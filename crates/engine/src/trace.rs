//! Per-round execution records, stored columnar.
//!
//! A [`Trace`] stores, for every simulated round, which agents were active,
//! which edge was missing, what each agent decided and what happened to it.
//! Traces feed the ASCII renderer, the invariant checker and the experiment
//! reports (e.g. "in which round was the ring explored?").
//!
//! # Columnar layout
//!
//! Recording used to dominate trace-on runs: one `RoundRecord` per round
//! owning two `Vec`s plus one eagerly formatted `state_label: String` per
//! agent. The trace now appends into flat, reusable columns instead:
//!
//! * **per-round columns** — round number, missing edge, visited count, and
//!   offsets into the flat active-set and agent-entry columns;
//! * **per-agent-entry columns** — the start node, a packed `u16` of
//!   flags/enums (active, terminated, held port, decision, outcome, move
//!   delta), and a state-label id;
//! * **delta-encoded movement** — the landing node is stored as a 2-bit code
//!   (stayed / one step ccw / one step cw) relative to the start node; only
//!   a landing that is none of those (hand-built records on an unknown ring)
//!   spills an explicit `NodeId` to a side table;
//! * **interned state labels** — the engine never calls
//!   [`state_label`](crate::world::AgentProgram::state_label) while
//!   recording. Protocol state only changes inside `decide`, so a new label
//!   entry (a cheap in-place program snapshot, variant-matching on the
//!   `CatalogProtocol` fast path) is taken only for agents that computed
//!   this round; every other entry reuses the agent's previous label id.
//!   Labels are rendered to `String`s lazily, at materialization time.
//!
//! The row-oriented [`RoundRecord`]/[`AgentRoundRecord`] structs survive as a
//! **lazily materialized view**: [`Trace::rounds`] iterates them,
//! [`Trace::round`] finds one by round number through a round-offset index,
//! and the `Debug` representation (which the golden digests of
//! `tests/determinism.rs` pin) is byte-identical to the old eager storage.
//! [`Trace::clear`] keeps every column's capacity (and the label table's
//! slots), so a recycled trace-on run appends without heap allocation.

use crate::world::AgentProgram;
use dynring_graph::{AgentId, EdgeId, GlobalDirection, NodeId};
use dynring_model::{Decision, LocalDirection, PriorOutcome};
use std::fmt;

/// What happened to one agent in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentRoundRecord {
    /// The agent.
    pub id: AgentId,
    /// Whether it was active this round.
    pub active: bool,
    /// Node at the beginning of the round.
    pub node_before: NodeId,
    /// Node at the end of the round.
    pub node_after: NodeId,
    /// Port held at the end of the round (global direction), if any.
    pub held_port_after: Option<GlobalDirection>,
    /// The decision taken (None if the agent was asleep or already terminated).
    pub decision: Option<Decision>,
    /// The outcome as it will be reported to the agent at its next activation.
    pub outcome: PriorOutcome,
    /// Whether the agent is terminated at the end of the round.
    pub terminated: bool,
    /// Protocol state label after the round.
    pub state_label: String,
}

/// Everything that happened in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// The (1-based) round number.
    pub round: u64,
    /// The edge the adversary removed, if any.
    pub missing_edge: Option<EdgeId>,
    /// The agents activated by the scheduler.
    pub active: Vec<AgentId>,
    /// Per-agent records, ordered by agent id.
    pub agents: Vec<AgentRoundRecord>,
    /// Number of distinct nodes visited by the union of all agents after this
    /// round.
    pub visited_count: usize,
}

impl RoundRecord {
    /// The record of a specific agent. Engine-recorded rounds hold one record
    /// per agent in id order, so the id doubles as the index and the common
    /// case is a direct lookup; hand-built records fall back to a scan.
    #[must_use]
    pub fn agent(&self, id: AgentId) -> Option<&AgentRoundRecord> {
        if let Some(record) = self.agents.get(id.index()) {
            if record.id == id {
                return Some(record);
            }
        }
        if let Ok(index) = self.agents.binary_search_by_key(&id, |a| a.id) {
            return Some(&self.agents[index]);
        }
        self.agents.iter().find(|a| a.id == id)
    }

    /// Number of successful traversals (moves or passive transports) in this
    /// round.
    #[must_use]
    pub fn traversals(&self) -> usize {
        self.agents
            .iter()
            .filter(|a| matches!(a.outcome, PriorOutcome::Moved | PriorOutcome::Transported))
            .count()
    }
}

// Bit layout of one packed per-agent entry (low to high).
const ACTIVE_BIT: u16 = 1;
const TERMINATED_BIT: u16 = 1 << 1;
const PORT_SHIFT: u16 = 2; // 2 bits: 0 none, 1 ccw, 2 cw
const DECISION_SHIFT: u16 = 4; // 3 bits: 0 none, 1 left, 2 right, 3 stay, 4 retreat, 5 terminate
const OUTCOME_SHIFT: u16 = 7; // 3 bits: PriorOutcome discriminant
const MOVE_SHIFT: u16 = 10; // 2 bits: 0 stayed, 1 +1 mod n, 2 -1 mod n, 3 spilled
const FIELD2: u16 = 0b11;
const FIELD3: u16 = 0b111;
const MOVE_STAY: u16 = 0;
const MOVE_CCW: u16 = 1;
const MOVE_CW: u16 = 2;
const MOVE_SPILL: u16 = 3;

/// Label id sentinel: the agent has no interned label yet (first recorded
/// round, or the cache was invalidated by a checkpoint restore).
const NO_LABEL: u32 = u32::MAX;

/// One slot of the state-label table: either a literal string (hand-built
/// records pushed through [`Trace::push`]) or a snapshot of the agent's
/// program, whose label is formatted only when a view materializes.
///
/// The program snapshot is stored inline, not boxed: interning a label is
/// on the per-round hot path, and a wide flat slot that is overwritten in
/// place on reuse keeps the recording loop free of heap allocation — a
/// boxed variant would trade the one-time width for an allocator call per
/// fresh label.
#[allow(clippy::large_enum_variant)]
enum LabelEntry {
    Text(String),
    Program(AgentProgram),
}

impl LabelEntry {
    fn render(&self) -> String {
        match self {
            LabelEntry::Text(text) => text.clone(),
            LabelEntry::Program(program) => program.state_label(),
        }
    }

    fn clone_entry(&self) -> LabelEntry {
        match self {
            LabelEntry::Text(text) => LabelEntry::Text(text.clone()),
            LabelEntry::Program(program) => LabelEntry::Program(program.clone_program()),
        }
    }
}

/// A full execution trace, stored columnar (see the module docs).
pub struct Trace {
    // Per-round columns.
    round_no: Vec<u64>,
    missing: Vec<Option<EdgeId>>,
    visited: Vec<usize>,
    /// Start of each round's slice of `active_ids`; the end is the next
    /// round's start (rounds only ever append).
    active_start: Vec<u32>,
    /// Start of each round's slice of the per-agent-entry columns.
    agent_start: Vec<u32>,
    /// Flat concatenation of every round's active set.
    active_ids: Vec<AgentId>,
    // Per-agent-entry columns (one entry per agent per recorded round).
    entry_id: Vec<AgentId>,
    entry_before: Vec<NodeId>,
    entry_packed: Vec<u16>,
    entry_label: Vec<u32>,
    /// Explicit landing nodes for entries whose move code is `MOVE_SPILL`,
    /// keyed by entry index (appended in order, so lookups binary-search).
    spill: Vec<(u32, NodeId)>,
    /// State-label table. Slots past `labels_len` are retained capacity from
    /// a cleared trace, reused in place on the next fill.
    labels: Vec<LabelEntry>,
    labels_len: usize,
    /// Per-agent id of the label recorded last (recorder state; `NO_LABEL`
    /// forces a fresh snapshot).
    last_label: Vec<u32>,
    /// Ring size the move codes are relative to (0 until an engine round is
    /// recorded: hand-built records spill every non-stay landing).
    ring_size: usize,
    /// Round numbers are exactly `1..=len` — lookup is an index.
    dense: bool,
    /// Round numbers are strictly increasing — lookup is a binary search.
    sorted: bool,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            round_no: Vec::new(),
            missing: Vec::new(),
            visited: Vec::new(),
            active_start: Vec::new(),
            agent_start: Vec::new(),
            active_ids: Vec::new(),
            entry_id: Vec::new(),
            entry_before: Vec::new(),
            entry_packed: Vec::new(),
            entry_label: Vec::new(),
            spill: Vec::new(),
            labels: Vec::new(),
            labels_len: 0,
            last_label: Vec::new(),
            ring_size: 0,
            dense: true,
            sorted: true,
        }
    }

    /// Appends a round record (the row-oriented entry point: tests and tools
    /// that build traces by hand; the engine records through the columnar
    /// fast path directly).
    pub fn push(&mut self, record: RoundRecord) {
        self.begin_round(record.round, record.missing_edge, record.visited_count, &record.active);
        for agent in &record.agents {
            let label = self.intern_text(agent.id.index(), &agent.state_label);
            self.push_entry(
                agent.id,
                agent.node_before,
                agent.node_after,
                agent.active,
                agent.terminated,
                agent.held_port_after,
                agent.decision,
                agent.outcome,
                label,
            );
        }
    }

    /// Forgets every recorded round, keeping every column's allocation (and
    /// the label table's slots) so a recycled simulation (see
    /// [`Simulation::recycle`](crate::sim::Simulation::recycle)) can refill
    /// the trace without reallocating.
    pub fn clear(&mut self) {
        self.round_no.clear();
        self.missing.clear();
        self.visited.clear();
        self.active_start.clear();
        self.agent_start.clear();
        self.active_ids.clear();
        self.entry_id.clear();
        self.entry_before.clear();
        self.entry_packed.clear();
        self.entry_label.clear();
        self.spill.clear();
        self.labels_len = 0;
        self.last_label.clear();
        self.ring_size = 0;
        self.dense = true;
        self.sorted = true;
    }

    /// All recorded rounds in order, as lazily materialized [`RoundRecord`]s.
    #[must_use]
    pub fn rounds(&self) -> Rounds<'_> {
        Rounds { trace: self, index: 0 }
    }

    /// The record at a given position (0-based), if recorded.
    #[must_use]
    pub fn round_at(&self, index: usize) -> Option<RoundRecord> {
        (index < self.len()).then(|| self.materialize(index))
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.round_no.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.round_no.is_empty()
    }

    /// The record of a given (1-based) round, if recorded. Engine traces are
    /// dense (`1..=len`) and resolve in O(1) through the offset index;
    /// sparse-but-increasing round numbers binary-search; only an
    /// out-of-order trace (e.g. one appended to across checkpoint restores)
    /// falls back to a first-match scan.
    #[must_use]
    pub fn round(&self, round: u64) -> Option<RoundRecord> {
        self.round_index(round).map(|index| self.materialize(index))
    }

    fn round_index(&self, round: u64) -> Option<usize> {
        if self.dense {
            return match round {
                0 => None,
                r if (r as usize) <= self.round_no.len() => Some(r as usize - 1),
                _ => None,
            };
        }
        if self.sorted {
            return self.round_no.binary_search(&round).ok();
        }
        self.round_no.iter().position(|&r| r == round)
    }

    /// The first round in which the union of visited nodes covered the whole
    /// ring of the given size.
    #[must_use]
    pub fn exploration_round(&self, ring_size: usize) -> Option<u64> {
        self.visited.iter().position(|&v| v >= ring_size).map(|index| self.round_no[index])
    }

    /// Total number of edge traversals across all agents and rounds.
    #[must_use]
    pub fn total_traversals(&self) -> usize {
        self.entry_packed
            .iter()
            .filter(|packed| {
                let outcome = (*packed >> OUTCOME_SHIFT) & FIELD3;
                outcome == PriorOutcome::Moved as u16 || outcome == PriorOutcome::Transported as u16
            })
            .count()
    }

    /// Checks the structural invariants of the model over the whole trace,
    /// returning a human-readable description of the first violation.
    ///
    /// The invariants checked are:
    /// 1. at most one edge is missing per round (by construction of the
    ///    record, always true — kept for completeness);
    /// 2. a terminated agent never moves again;
    /// 3. an agent moves by at most one edge per round, and only over a
    ///    present edge;
    /// 4. at most one agent holds any given port at the end of a round.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self, ring_size: usize) -> Result<(), String> {
        let mut terminated: std::collections::HashSet<AgentId> = std::collections::HashSet::new();
        let mut held: std::collections::HashSet<(NodeId, GlobalDirection)> =
            std::collections::HashSet::new();
        for record in self.rounds() {
            for agent in &record.agents {
                if terminated.contains(&agent.id) && agent.node_before != agent.node_after {
                    return Err(format!(
                        "terminated agent {} moved in round {}",
                        agent.id, record.round
                    ));
                }
                let before = agent.node_before.index() as i64;
                let after = agent.node_after.index() as i64;
                let diff = (after - before).rem_euclid(ring_size as i64);
                if diff != 0 && diff != 1 && diff != ring_size as i64 - 1 {
                    return Err(format!(
                        "agent {} jumped from {} to {} in round {}",
                        agent.id, agent.node_before, agent.node_after, record.round
                    ));
                }
                if agent.terminated {
                    terminated.insert(agent.id);
                }
            }
            held.clear();
            for agent in &record.agents {
                if let Some(port) = agent.held_port_after {
                    if !held.insert((agent.node_after, port)) {
                        return Err(format!(
                            "two agents hold the same port of {} in round {}",
                            agent.node_after, record.round
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Records one engine round straight from the round loop's slices — the
    /// columnar fast path: flat appends only, no per-round `Vec`s, no
    /// `state_label` formatting (agents that did not compute reuse their
    /// previous label id; agents that did snapshot their program in place).
    /// Steady-state allocation-free once every column has seen this shape.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_round_from_lane(
        &mut self,
        round: u64,
        missing_edge: Option<EdgeId>,
        visited_count: usize,
        ring_size: usize,
        active: &[AgentId],
        active_mask: &[bool],
        nodes_before: &[NodeId],
        nodes_after: &[NodeId],
        held_port: &[Option<GlobalDirection>],
        decisions: &[Option<Decision>],
        outcomes: &[PriorOutcome],
        terminated: &[bool],
        programs: &[AgentProgram],
    ) {
        self.ring_size = ring_size;
        self.begin_round(round, missing_edge, visited_count, active);
        let count = nodes_after.len();
        if self.last_label.len() < count {
            self.last_label.resize(count, NO_LABEL);
        }
        for index in 0..count {
            // Protocol state mutates only inside `decide`, so an agent that
            // did not compute this round is still in its last recorded state.
            let label = if decisions[index].is_some() || self.last_label[index] == NO_LABEL {
                self.intern_program(index, &programs[index])
            } else {
                self.last_label[index]
            };
            self.push_entry(
                AgentId::new(index),
                nodes_before[index],
                nodes_after[index],
                active_mask[index],
                terminated[index],
                held_port[index],
                decisions[index],
                outcomes[index],
                label,
            );
        }
    }

    /// Drops the per-agent label cache so the next recorded round snapshots
    /// every program afresh. Called on [`Simulation::restore`]
    /// (crate::sim::Simulation::restore): a restore rewrites program state
    /// outside `decide`, which is the one event the delta encoding cannot
    /// see.
    pub(crate) fn invalidate_label_cache(&mut self) {
        self.last_label.clear();
    }

    fn begin_round(
        &mut self,
        round: u64,
        missing_edge: Option<EdgeId>,
        visited_count: usize,
        active: &[AgentId],
    ) {
        self.dense = self.dense && round == self.round_no.len() as u64 + 1;
        if let Some(&last) = self.round_no.last() {
            self.sorted = self.sorted && round > last;
        }
        self.round_no.push(round);
        self.missing.push(missing_edge);
        self.visited.push(visited_count);
        self.active_start.push(self.active_ids.len() as u32);
        self.active_ids.extend_from_slice(active);
        self.agent_start.push(self.entry_id.len() as u32);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_entry(
        &mut self,
        id: AgentId,
        node_before: NodeId,
        node_after: NodeId,
        active: bool,
        terminated: bool,
        held_port: Option<GlobalDirection>,
        decision: Option<Decision>,
        outcome: PriorOutcome,
        label: u32,
    ) {
        let n = self.ring_size;
        let move_code = if node_after == node_before {
            MOVE_STAY
        } else if n >= 2 && node_after.index() == (node_before.index() + 1) % n {
            MOVE_CCW
        } else if n >= 2 && node_after.index() == (node_before.index() + n - 1) % n {
            MOVE_CW
        } else {
            self.spill.push((self.entry_id.len() as u32, node_after));
            MOVE_SPILL
        };
        let mut packed = move_code << MOVE_SHIFT;
        packed |= (outcome as u16) << OUTCOME_SHIFT;
        packed |= match decision {
            None => 0,
            Some(Decision::Move(LocalDirection::Left)) => 1,
            Some(Decision::Move(LocalDirection::Right)) => 2,
            Some(Decision::Stay) => 3,
            Some(Decision::Retreat) => 4,
            Some(Decision::Terminate) => 5,
        } << DECISION_SHIFT;
        packed |= match held_port {
            None => 0,
            Some(GlobalDirection::Ccw) => 1,
            Some(GlobalDirection::Cw) => 2,
        } << PORT_SHIFT;
        if active {
            packed |= ACTIVE_BIT;
        }
        if terminated {
            packed |= TERMINATED_BIT;
        }
        self.entry_id.push(id);
        self.entry_before.push(node_before);
        self.entry_packed.push(packed);
        self.entry_label.push(label);
    }

    /// Interns a literal label for the push path, reusing the agent's
    /// previous entry when the text is unchanged.
    fn intern_text(&mut self, agent_index: usize, label: &str) -> u32 {
        if self.last_label.len() <= agent_index {
            self.last_label.resize(agent_index + 1, NO_LABEL);
        }
        let previous = self.last_label[agent_index];
        if previous != NO_LABEL {
            if let LabelEntry::Text(text) = &self.labels[previous as usize] {
                if text == label {
                    return previous;
                }
            }
        }
        let id = self.alloc_label();
        match &mut self.labels[id as usize] {
            LabelEntry::Text(text) => {
                text.clear();
                text.push_str(label);
            }
            slot => *slot = LabelEntry::Text(label.to_string()),
        }
        self.last_label[agent_index] = id;
        id
    }

    /// Interns a program snapshot: reuses a cleared table slot in place
    /// through the variant-matching state copy when the slot's
    /// representation matches, so a recycled rerun of the same scenario
    /// never allocates for labels.
    fn intern_program(&mut self, agent_index: usize, program: &AgentProgram) -> u32 {
        let id = self.labels_len;
        if id == self.labels.len() {
            // Growing past every retained slot: snapshot straight into the
            // push (no placeholder that the slot write would immediately
            // overwrite — the label table is the widest trace column, so
            // writing each fresh slot once instead of twice matters).
            self.labels.push(LabelEntry::Program(program.clone_program()));
        } else {
            let slot = &mut self.labels[id];
            let reused = match slot {
                LabelEntry::Program(existing) => existing.clone_from_program(program),
                LabelEntry::Text(_) => false,
            };
            if !reused {
                *slot = LabelEntry::Program(program.clone_program());
            }
        }
        self.labels_len += 1;
        self.last_label[agent_index] = id as u32;
        id as u32
    }

    fn alloc_label(&mut self) -> u32 {
        let id = self.labels_len;
        if id == self.labels.len() {
            self.labels.push(LabelEntry::Text(String::new()));
        }
        self.labels_len += 1;
        id as u32
    }

    /// Materializes the row view of the round at `index` (0-based).
    fn materialize(&self, index: usize) -> RoundRecord {
        let active_end =
            self.active_start.get(index + 1).map_or(self.active_ids.len(), |&end| end as usize);
        let entry_end =
            self.agent_start.get(index + 1).map_or(self.entry_id.len(), |&end| end as usize);
        let entries = self.agent_start[index] as usize..entry_end;
        RoundRecord {
            round: self.round_no[index],
            missing_edge: self.missing[index],
            active: self.active_ids[self.active_start[index] as usize..active_end].to_vec(),
            agents: entries.map(|entry| self.materialize_entry(entry)).collect(),
            visited_count: self.visited[index],
        }
    }

    fn materialize_entry(&self, entry: usize) -> AgentRoundRecord {
        let packed = self.entry_packed[entry];
        let node_before = self.entry_before[entry];
        let n = self.ring_size;
        let node_after = match (packed >> MOVE_SHIFT) & FIELD2 {
            MOVE_STAY => node_before,
            MOVE_CCW => NodeId::new((node_before.index() + 1) % n),
            MOVE_CW => NodeId::new((node_before.index() + n - 1) % n),
            _ => {
                let slot = self
                    .spill
                    .binary_search_by_key(&(entry as u32), |&(at, _)| at)
                    .expect("spilled landing node recorded for this entry");
                self.spill[slot].1
            }
        };
        AgentRoundRecord {
            id: self.entry_id[entry],
            active: packed & ACTIVE_BIT != 0,
            node_before,
            node_after,
            held_port_after: match (packed >> PORT_SHIFT) & FIELD2 {
                0 => None,
                1 => Some(GlobalDirection::Ccw),
                _ => Some(GlobalDirection::Cw),
            },
            decision: match (packed >> DECISION_SHIFT) & FIELD3 {
                0 => None,
                1 => Some(Decision::Move(LocalDirection::Left)),
                2 => Some(Decision::Move(LocalDirection::Right)),
                3 => Some(Decision::Stay),
                4 => Some(Decision::Retreat),
                _ => Some(Decision::Terminate),
            },
            outcome: match (packed >> OUTCOME_SHIFT) & FIELD3 {
                0 => PriorOutcome::Idle,
                1 => PriorOutcome::Moved,
                2 => PriorOutcome::BlockedOnPort,
                3 => PriorOutcome::PortAcquisitionFailed,
                _ => PriorOutcome::Transported,
            },
            terminated: packed & TERMINATED_BIT != 0,
            state_label: self.labels[self.entry_label[entry] as usize].render(),
        }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        Trace {
            round_no: self.round_no.clone(),
            missing: self.missing.clone(),
            visited: self.visited.clone(),
            active_start: self.active_start.clone(),
            agent_start: self.agent_start.clone(),
            active_ids: self.active_ids.clone(),
            entry_id: self.entry_id.clone(),
            entry_before: self.entry_before.clone(),
            entry_packed: self.entry_packed.clone(),
            entry_label: self.entry_label.clone(),
            spill: self.spill.clone(),
            labels: self.labels[..self.labels_len].iter().map(LabelEntry::clone_entry).collect(),
            labels_len: self.labels_len,
            last_label: self.last_label.clone(),
            ring_size: self.ring_size,
            dense: self.dense,
            sorted: self.sorted,
        }
    }
}

/// Byte-identical to the derived `Debug` of the historical row-of-structs
/// storage (`Trace { rounds: [...] }`) — the golden digests in
/// `tests/determinism.rs` hash this representation.
impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rounds: Vec<RoundRecord> = self.rounds().collect();
        f.debug_struct("Trace").field("rounds", &rounds).finish()
    }
}

/// Two traces are equal when they materialize to the same round records —
/// the label representation (literal vs program snapshot) is unobservable.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.rounds().eq(other.rounds())
    }
}

impl Eq for Trace {}

/// Iterator over a trace's rounds as materialized [`RoundRecord`]s (see
/// [`Trace::rounds`]).
pub struct Rounds<'a> {
    trace: &'a Trace,
    index: usize,
}

impl Iterator for Rounds<'_> {
    type Item = RoundRecord;

    fn next(&mut self) -> Option<RoundRecord> {
        let record = self.trace.round_at(self.index)?;
        self.index += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.trace.len() - self.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Rounds<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64, visited: usize) -> RoundRecord {
        RoundRecord {
            round,
            missing_edge: None,
            active: vec![AgentId::new(0)],
            agents: vec![AgentRoundRecord {
                id: AgentId::new(0),
                active: true,
                node_before: NodeId::new(0),
                node_after: NodeId::new(1),
                held_port_after: None,
                decision: Some(Decision::Move(LocalDirection::Right)),
                outcome: PriorOutcome::Moved,
                terminated: false,
                state_label: "Init".to_string(),
            }],
            visited_count: visited,
        }
    }

    #[test]
    fn trace_accumulates_rounds() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(record(1, 2));
        t.push(record(2, 3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.round(2).unwrap().visited_count, 3);
        assert_eq!(t.exploration_round(3), Some(2));
        assert_eq!(t.exploration_round(9), None);
        assert_eq!(t.total_traversals(), 2);
        assert_eq!(t.round_at(0).unwrap().traversals(), 1);
        assert!(t.round_at(0).unwrap().agent(AgentId::new(0)).is_some());
    }

    #[test]
    fn pushed_records_materialize_identically() {
        let mut t = Trace::new();
        let mut second = record(2, 3);
        second.missing_edge = Some(EdgeId::new(4));
        second.agents[0].held_port_after = Some(GlobalDirection::Cw);
        second.agents[0].decision = Some(Decision::Retreat);
        second.agents[0].outcome = PriorOutcome::BlockedOnPort;
        second.agents[0].state_label = "Blocked".to_string();
        t.push(record(1, 2));
        t.push(second.clone());
        assert_eq!(t.round_at(0).unwrap(), record(1, 2));
        assert_eq!(t.round_at(1).unwrap(), second);
        assert_eq!(t.rounds().len(), 2);
        let rounds: Vec<RoundRecord> = t.rounds().collect();
        assert_eq!(rounds, vec![record(1, 2), second]);
    }

    #[test]
    fn round_lookup_handles_sparse_numbering() {
        let mut t = Trace::new();
        t.push(record(2, 2));
        t.push(record(5, 3));
        t.push(record(9, 4));
        assert_eq!(t.round(5).unwrap().visited_count, 3);
        assert_eq!(t.round(9).unwrap().visited_count, 4);
        assert!(t.round(1).is_none());
        assert!(t.round(3).is_none());
        assert!(t.round(10).is_none());
    }

    #[test]
    fn round_lookup_handles_out_of_order_numbering() {
        // A restored trace-on simulation appends rounds from every branch,
        // so numbers may repeat or decrease; lookup is first-match.
        let mut t = Trace::new();
        t.push(record(1, 2));
        t.push(record(2, 3));
        t.push(record(2, 4));
        t.push(record(1, 5));
        assert_eq!(t.round(1).unwrap().visited_count, 2);
        assert_eq!(t.round(2).unwrap().visited_count, 3);
        assert!(t.round(3).is_none());
    }

    #[test]
    fn dense_lookup_rejects_round_zero_and_overflow() {
        let mut t = Trace::new();
        t.push(record(1, 2));
        t.push(record(2, 3));
        assert!(t.round(0).is_none());
        assert_eq!(t.round(1).unwrap().round, 1);
        assert!(t.round(3).is_none());
    }

    #[test]
    fn clear_resets_and_allows_refill() {
        let mut t = Trace::new();
        t.push(record(1, 2));
        t.push(record(2, 3));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.round(1).is_none());
        assert_eq!(t.total_traversals(), 0);
        t.push(record(1, 4));
        assert_eq!(t.len(), 1);
        assert_eq!(t.round(1).unwrap().visited_count, 4);
        assert_eq!(t.round_at(0).unwrap().agents[0].state_label, "Init");
    }

    #[test]
    fn debug_matches_row_of_structs_form() {
        let mut t = Trace::new();
        t.push(record(1, 2));
        let rounds = vec![record(1, 2)];
        // The historical storage derived Debug over a single `rounds` field;
        // the golden digests pin this exact rendering.
        struct Old<'a> {
            rounds: &'a [RoundRecord],
        }
        impl fmt::Debug for Old<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct("Trace").field("rounds", &self.rounds).finish()
            }
        }
        assert_eq!(format!("{t:?}"), format!("{:?}", Old { rounds: &rounds }));
        assert_eq!(format!("{t:#?}"), format!("{:#?}", Old { rounds: &rounds }));
    }

    #[test]
    fn equality_is_view_equality() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.push(record(1, 2));
        b.push(record(1, 2));
        assert_eq!(a, b);
        assert_eq!(a, a.clone());
        b.push(record(2, 3));
        assert_ne!(a, b);
        assert_eq!(Trace::new(), Trace::default());
    }

    #[test]
    fn invariants_accept_legal_traces() {
        let mut t = Trace::new();
        t.push(record(1, 2));
        assert!(t.check_invariants(6).is_ok());
    }

    #[test]
    fn invariants_reject_teleportation() {
        let mut t = Trace::new();
        let mut r = record(1, 2);
        r.agents[0].node_after = NodeId::new(3);
        t.push(r);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("jumped"));
    }

    #[test]
    fn invariants_reject_moving_after_termination() {
        let mut t = Trace::new();
        let mut r1 = record(1, 2);
        r1.agents[0].terminated = true;
        r1.agents[0].node_after = r1.agents[0].node_before;
        t.push(r1);
        let mut r2 = record(2, 2);
        r2.agents[0].terminated = true;
        t.push(r2);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("terminated"));
    }

    #[test]
    fn invariants_reject_shared_ports() {
        let mut t = Trace::new();
        let mut r = record(1, 2);
        let mut second = r.agents[0].clone();
        second.id = AgentId::new(1);
        second.node_after = r.agents[0].node_after;
        second.held_port_after = Some(GlobalDirection::Ccw);
        r.agents[0].held_port_after = Some(GlobalDirection::Ccw);
        r.agents.push(second);
        t.push(r);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("same port"));
    }

    /// Minimal protocol so the engine-facing encoder tests can hand real
    /// programs to `record_round_from_lane`.
    #[derive(Debug, Clone)]
    struct Probe;
    impl dynring_model::Protocol for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn termination_kind(&self) -> dynring_model::TerminationKind {
            dynring_model::TerminationKind::Unconscious
        }
        fn decide(&mut self, _snapshot: &dynring_model::Snapshot) -> Decision {
            Decision::Stay
        }
        fn has_terminated(&self) -> bool {
            false
        }
        fn clone_box(&self) -> Box<dyn dynring_model::Protocol> {
            Box::new(self.clone())
        }
    }

    /// Drives one round through the engine-facing delta encoder — the
    /// columnar fast path the simulation uses, not the `push` compatibility
    /// path — so the invariant checker is proven against entries that went
    /// through move-code packing, spill and label interning.
    fn record_lane_round(
        t: &mut Trace,
        round: u64,
        ring_size: usize,
        before: &[usize],
        after: &[usize],
        held: &[Option<GlobalDirection>],
        terminated: &[bool],
    ) {
        let count = before.len();
        let active: Vec<AgentId> =
            (0..count).filter(|&i| !terminated[i]).map(AgentId::new).collect();
        let active_mask: Vec<bool> = terminated.iter().map(|t| !t).collect();
        let nodes_before: Vec<NodeId> = before.iter().copied().map(NodeId::new).collect();
        let nodes_after: Vec<NodeId> = after.iter().copied().map(NodeId::new).collect();
        let decisions: Vec<Option<Decision>> = active_mask
            .iter()
            .map(|&live| if live { Some(Decision::Move(LocalDirection::Right)) } else { None })
            .collect();
        let outcomes: Vec<PriorOutcome> = before
            .iter()
            .zip(after)
            .map(|(b, a)| if b == a { PriorOutcome::Idle } else { PriorOutcome::Moved })
            .collect();
        let programs: Vec<AgentProgram> =
            (0..count).map(|_| AgentProgram::Boxed(Box::new(Probe))).collect();
        t.record_round_from_lane(
            round,
            None,
            2,
            ring_size,
            &active,
            &active_mask,
            &nodes_before,
            &nodes_after,
            held,
            &decisions,
            &outcomes,
            terminated,
            &programs,
        );
    }

    #[test]
    fn encoder_accepts_legal_unit_moves_in_both_directions() {
        // 0 → 1 is the +1 (ccw) move code, 1 → 0 the −1 (cw) code, and the
        // wrap 0 → 7 on an 8-ring exercises the modular delta.
        let mut t = Trace::new();
        record_lane_round(&mut t, 1, 8, &[0, 1], &[1, 0], &[None, None], &[false, false]);
        record_lane_round(&mut t, 2, 8, &[1, 0], &[0, 7], &[None, None], &[false, false]);
        assert!(t.check_invariants(8).is_ok());
        let rounds: Vec<RoundRecord> = t.rounds().collect();
        assert_eq!(rounds[0].agents[0].node_after, NodeId::new(1));
        assert_eq!(rounds[1].agents[1].node_after, NodeId::new(7));
    }

    #[test]
    fn encoder_preserves_teleports_for_the_checker() {
        // A two-edge jump does not fit the 2-bit move code: it must spill an
        // explicit landing node and still reach the checker intact.
        let mut t = Trace::new();
        record_lane_round(&mut t, 1, 8, &[0], &[3], &[None], &[false]);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("jumped"), "{err}");
    }

    #[test]
    fn encoder_preserves_post_termination_moves_for_the_checker() {
        let mut t = Trace::new();
        record_lane_round(&mut t, 1, 8, &[2], &[2], &[None], &[true]);
        record_lane_round(&mut t, 2, 8, &[2], &[3], &[None], &[true]);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("terminated"), "{err}");
    }

    #[test]
    fn encoder_preserves_shared_ports_for_the_checker() {
        let mut t = Trace::new();
        record_lane_round(
            &mut t,
            1,
            8,
            &[4, 4],
            &[4, 4],
            &[Some(GlobalDirection::Ccw), Some(GlobalDirection::Ccw)],
            &[false, false],
        );
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("same port"), "{err}");
    }

    #[test]
    fn agent_lookup_survives_gapped_ids() {
        let mut r = record(1, 2);
        let mut second = r.agents[0].clone();
        second.id = AgentId::new(7);
        r.agents.push(second);
        assert_eq!(r.agent(AgentId::new(0)).unwrap().id, AgentId::new(0));
        assert_eq!(r.agent(AgentId::new(7)).unwrap().id, AgentId::new(7));
        assert!(r.agent(AgentId::new(3)).is_none());
    }
}
