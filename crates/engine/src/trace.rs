//! Per-round execution records.
//!
//! A [`Trace`] stores, for every simulated round, which agents were active,
//! which edge was missing, what each agent decided and what happened to it.
//! Traces feed the ASCII renderer, the invariant checker and the experiment
//! reports (e.g. "in which round was the ring explored?").

use dynring_graph::{AgentId, EdgeId, GlobalDirection, NodeId};
use dynring_model::{Decision, PriorOutcome};
use serde::{Deserialize, Serialize};

/// What happened to one agent in one round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentRoundRecord {
    /// The agent.
    pub id: AgentId,
    /// Whether it was active this round.
    pub active: bool,
    /// Node at the beginning of the round.
    pub node_before: NodeId,
    /// Node at the end of the round.
    pub node_after: NodeId,
    /// Port held at the end of the round (global direction), if any.
    pub held_port_after: Option<GlobalDirection>,
    /// The decision taken (None if the agent was asleep or already terminated).
    pub decision: Option<Decision>,
    /// The outcome as it will be reported to the agent at its next activation.
    pub outcome: PriorOutcome,
    /// Whether the agent is terminated at the end of the round.
    pub terminated: bool,
    /// Protocol state label after the round.
    pub state_label: String,
}

/// Everything that happened in one round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// The (1-based) round number.
    pub round: u64,
    /// The edge the adversary removed, if any.
    pub missing_edge: Option<EdgeId>,
    /// The agents activated by the scheduler.
    pub active: Vec<AgentId>,
    /// Per-agent records, ordered by agent id.
    pub agents: Vec<AgentRoundRecord>,
    /// Number of distinct nodes visited by the union of all agents after this
    /// round.
    pub visited_count: usize,
}

impl RoundRecord {
    /// The record of a specific agent.
    #[must_use]
    pub fn agent(&self, id: AgentId) -> Option<&AgentRoundRecord> {
        self.agents.iter().find(|a| a.id == id)
    }

    /// Number of successful traversals (moves or passive transports) in this
    /// round.
    #[must_use]
    pub fn traversals(&self) -> usize {
        self.agents
            .iter()
            .filter(|a| matches!(a.outcome, PriorOutcome::Moved | PriorOutcome::Transported))
            .count()
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    rounds: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { rounds: Vec::new() }
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Forgets every recorded round, keeping the allocation so a recycled
    /// simulation (see [`Simulation::recycle`](crate::sim::Simulation::recycle))
    /// can refill the trace without reallocating the round buffer.
    pub fn clear(&mut self) {
        self.rounds.clear();
    }

    /// All recorded rounds in order.
    #[must_use]
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The record of a given (1-based) round, if recorded.
    #[must_use]
    pub fn round(&self, round: u64) -> Option<&RoundRecord> {
        self.rounds.iter().find(|r| r.round == round)
    }

    /// The first round in which the union of visited nodes covered the whole
    /// ring of the given size.
    #[must_use]
    pub fn exploration_round(&self, ring_size: usize) -> Option<u64> {
        self.rounds.iter().find(|r| r.visited_count >= ring_size).map(|r| r.round)
    }

    /// Total number of edge traversals across all agents and rounds.
    #[must_use]
    pub fn total_traversals(&self) -> usize {
        self.rounds.iter().map(RoundRecord::traversals).sum()
    }

    /// Checks the structural invariants of the model over the whole trace,
    /// returning a human-readable description of the first violation.
    ///
    /// The invariants checked are:
    /// 1. at most one edge is missing per round (by construction of the
    ///    record, always true — kept for completeness);
    /// 2. a terminated agent never moves again;
    /// 3. an agent moves by at most one edge per round, and only over a
    ///    present edge;
    /// 4. at most one agent holds any given port at the end of a round.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self, ring_size: usize) -> Result<(), String> {
        let mut terminated: std::collections::HashSet<AgentId> = std::collections::HashSet::new();
        for record in &self.rounds {
            for agent in &record.agents {
                if terminated.contains(&agent.id) && agent.node_before != agent.node_after {
                    return Err(format!(
                        "terminated agent {} moved in round {}",
                        agent.id, record.round
                    ));
                }
                let before = agent.node_before.index() as i64;
                let after = agent.node_after.index() as i64;
                let diff = (after - before).rem_euclid(ring_size as i64);
                if diff != 0 && diff != 1 && diff != ring_size as i64 - 1 {
                    return Err(format!(
                        "agent {} jumped from {} to {} in round {}",
                        agent.id, agent.node_before, agent.node_after, record.round
                    ));
                }
                if agent.terminated {
                    terminated.insert(agent.id);
                }
            }
            let mut held: std::collections::HashSet<(NodeId, GlobalDirection)> =
                std::collections::HashSet::new();
            for agent in &record.agents {
                if let Some(port) = agent.held_port_after {
                    if !held.insert((agent.node_after, port)) {
                        return Err(format!(
                            "two agents hold the same port of {} in round {}",
                            agent.node_after, record.round
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::LocalDirection;

    fn record(round: u64, visited: usize) -> RoundRecord {
        RoundRecord {
            round,
            missing_edge: None,
            active: vec![AgentId::new(0)],
            agents: vec![AgentRoundRecord {
                id: AgentId::new(0),
                active: true,
                node_before: NodeId::new(0),
                node_after: NodeId::new(1),
                held_port_after: None,
                decision: Some(Decision::Move(LocalDirection::Right)),
                outcome: PriorOutcome::Moved,
                terminated: false,
                state_label: "Init".to_string(),
            }],
            visited_count: visited,
        }
    }

    #[test]
    fn trace_accumulates_rounds() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(record(1, 2));
        t.push(record(2, 3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.round(2).unwrap().visited_count, 3);
        assert_eq!(t.exploration_round(3), Some(2));
        assert_eq!(t.exploration_round(9), None);
        assert_eq!(t.total_traversals(), 2);
        assert_eq!(t.rounds()[0].traversals(), 1);
        assert!(t.rounds()[0].agent(AgentId::new(0)).is_some());
    }

    #[test]
    fn invariants_accept_legal_traces() {
        let mut t = Trace::new();
        t.push(record(1, 2));
        assert!(t.check_invariants(6).is_ok());
    }

    #[test]
    fn invariants_reject_teleportation() {
        let mut t = Trace::new();
        let mut r = record(1, 2);
        r.agents[0].node_after = NodeId::new(3);
        t.push(r);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("jumped"));
    }

    #[test]
    fn invariants_reject_moving_after_termination() {
        let mut t = Trace::new();
        let mut r1 = record(1, 2);
        r1.agents[0].terminated = true;
        r1.agents[0].node_after = r1.agents[0].node_before;
        t.push(r1);
        let mut r2 = record(2, 2);
        r2.agents[0].terminated = true;
        t.push(r2);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("terminated"));
    }

    #[test]
    fn invariants_reject_shared_ports() {
        let mut t = Trace::new();
        let mut r = record(1, 2);
        let mut second = r.agents[0].clone();
        second.id = AgentId::new(1);
        second.node_after = r.agents[0].node_after;
        second.held_port_after = Some(GlobalDirection::Ccw);
        r.agents[0].held_port_after = Some(GlobalDirection::Ccw);
        r.agents.push(second);
        t.push(r);
        let err = t.check_invariants(8).unwrap_err();
        assert!(err.contains("same port"));
    }
}
