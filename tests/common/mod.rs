//! Helpers shared by the golden-execution suites (`tests/determinism.rs`
//! pins the fresh-build lifecycle, `tests/recycle_equivalence.rs` the
//! recycled one — both against the same pre-refactor digests, defined once
//! here so the two suites can never assert different truths).

use dynring_analysis::scenario::{AdversaryKind, Scenario, SchedulerKind};
use dynring_core::Algorithm;
use dynring_engine::sim::StopCondition;

/// FNV-1a over the debug rendering of the full execution record. The debug
/// representation covers every field of every round record, so two runs
/// digest equal iff they are observably identical.
pub fn fnv(rendered: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One golden scenario per algorithm family, with the digest captured from
/// the pre-refactor engine (commit 4e7f7a2). These values must never change.
pub fn golden_scenarios() -> Vec<(&'static str, Scenario, u64)> {
    vec![
        (
            "fsync/known-bound/static",
            Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 }).with_trace(),
            0xb810_8681_4748_0790,
        ),
        (
            "fsync/known-bound/sticky",
            Scenario::fsync(9, Algorithm::KnownBound { upper_bound: 9 })
                .with_adversary(AdversaryKind::Sticky {
                    min_hold: 1,
                    max_hold: 9,
                    present: 0.25,
                    seed: 11,
                })
                .with_trace(),
            0xe591_03e1_1672_c14c,
        ),
        (
            "fsync/landmark-no-chirality/alternating",
            Scenario::fsync(8, Algorithm::LandmarkNoChirality)
                .with_adversary(AdversaryKind::Alternating { first: 0, second: 4 })
                .with_trace(),
            0x01ff_9322_8fe0_be38,
        ),
        (
            "fsync/unconscious/prevent-meeting",
            Scenario::fsync(9, Algorithm::Unconscious)
                .with_adversary(AdversaryKind::PreventMeeting)
                .with_stop(StopCondition::Explored)
                .with_trace(),
            0x9b1c_7bdf_1a2f_18db,
        ),
        // Prediction-on goldens: the omniscient `PreventMeeting` adversary
        // forces the engine to predict every agent's decision each round, so
        // these digests pin the probe-pool / prediction-fusion path (state
        // copies instead of per-round clone_box) bit-for-bit against the
        // pre-refactor engine.
        (
            "fsync/known-bound/prevent-meeting",
            Scenario::fsync(9, Algorithm::KnownBound { upper_bound: 9 })
                .with_adversary(AdversaryKind::PreventMeeting)
                .with_trace(),
            0xf643_235d_5ffb_91d7,
        ),
        (
            "ssync/pt-bound-chirality/prevent-meeting",
            Scenario::ssync(6, Algorithm::PtBoundChirality { upper_bound: 6 }, 5)
                .with_adversary(AdversaryKind::PreventMeeting)
                .with_trace(),
            0x92bb_8aa1_3ca5_f4c7,
        ),
        (
            "ssync/pt-bound-chirality/sticky",
            Scenario::ssync(6, Algorithm::PtBoundChirality { upper_bound: 6 }, 11).with_trace(),
            0x8f9e_3137_e44b_8c69,
        ),
        (
            "ssync/pt-landmark-no-chirality/round-robin",
            Scenario::ssync(6, Algorithm::PtLandmarkNoChirality, 3)
                .with_scheduler(SchedulerKind::RoundRobin)
                .with_trace(),
            0x80d6_cbe2_ff60_d755,
        ),
        (
            "ssync/et-bound/et-fair",
            Scenario::ssync(6, Algorithm::EtBoundNoChirality { ring_size: 6 }, 7).with_trace(),
            0xdc1b_c68d_4d7f_db97,
        ),
    ]
}
