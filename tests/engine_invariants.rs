//! Property-based tests of the engine's structural invariants: whatever the
//! protocol, adversary and scheduler, recorded traces respect the model of
//! Section 2 (one edge missing per round, port mutual exclusion, unit moves,
//! terminated agents never move again).

use dynring::prelude::*;
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use proptest::prelude::*;

fn adversary_from_index(i: usize, n: usize, seed: u64) -> AdversaryKind {
    match i % 6 {
        0 => AdversaryKind::Static,
        1 => AdversaryKind::Random { p: 0.8, seed },
        2 => AdversaryKind::Sticky { min_hold: 1, max_hold: n as u64, present: 0.2, seed },
        3 => AdversaryKind::BlockForever { edge: seed as usize % n },
        4 => AdversaryKind::PreventMeeting,
        _ => AdversaryKind::Alternating { first: 0, second: n / 2 },
    }
}

fn algorithm_from_index(i: usize, n: usize) -> Algorithm {
    match i % 7 {
        0 => Algorithm::KnownBound { upper_bound: n },
        1 => Algorithm::Unconscious,
        2 => Algorithm::LandmarkChirality,
        3 => Algorithm::PtBoundChirality { upper_bound: n },
        4 => Algorithm::PtBoundNoChirality { upper_bound: n },
        5 => Algorithm::EtUnconscious,
        _ => Algorithm::LoneWalker { patience: 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_respect_the_model(
        n in 4usize..12,
        alg_index in 0usize..7,
        adv_index in 0usize..6,
        ssync in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let algorithm = algorithm_from_index(alg_index, n);
        let mut scenario = if ssync && !matches!(algorithm, Algorithm::LoneWalker { .. }) {
            Scenario::ssync(n, algorithm, seed)
        } else {
            Scenario::fsync(n, algorithm)
        };
        scenario.record_trace = true;
        let scenario = scenario
            .with_adversary(adversary_from_index(adv_index, n, seed))
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(30 * n as u64);
        let mut sim = scenario.build();
        let _ = sim.run(30 * n as u64, StopCondition::RoundBudget);
        let trace = sim.trace().expect("trace recording enabled");
        prop_assert!(trace.len() as u64 <= 30 * n as u64);
        if let Err(violation) = trace.check_invariants(n) {
            return Err(TestCaseError::fail(format!("{algorithm}: {violation}")));
        }
        // Visited counts are monotone and never exceed the ring size.
        let mut last = 0usize;
        for record in trace.rounds() {
            prop_assert!(record.visited_count >= last);
            prop_assert!(record.visited_count <= n);
            last = record.visited_count;
        }
    }

    /// The exploration round reported by the simulation matches the trace.
    #[test]
    fn exploration_round_matches_trace(n in 4usize..10, seed in any::<u64>()) {
        let mut scenario = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n });
        scenario.record_trace = true;
        let scenario = scenario.with_adversary(AdversaryKind::Sticky {
            min_hold: 1,
            max_hold: n as u64,
            present: 0.3,
            seed,
        });
        let mut sim = scenario.build();
        let report = sim.run(20 * n as u64, StopCondition::AllTerminated);
        let trace = sim.trace().expect("trace recording enabled");
        prop_assert_eq!(report.explored_at, trace.exploration_round(n));
        prop_assert_eq!(report.total_moves as usize, trace.total_traversals());
    }
}
