//! Property tests for the protocol state-copy API backing the engine's
//! probe pool.
//!
//! The omniscient-adversary path refreshes a per-agent *probe* through
//! [`Protocol::clone_from_box`] (an in-place state copy) instead of boxing a
//! fresh [`Protocol::clone_box`] every round. That is only sound if the copy
//! is indistinguishable from a fresh clone for every protocol in the
//! catalogue, whatever states the live instance and the stale probe are in —
//! which is exactly what these properties pin down.

use dynring_core::Algorithm;
use dynring_model::{
    LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Protocol, Snapshot,
};
use proptest::prelude::*;

/// Deterministically derives a plausible Look snapshot from `bits` (a
/// SplitMix-style scramble keeps consecutive rounds diverse).
fn snapshot_from(bits: u64, round: u64) -> Snapshot {
    let mut z = bits ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    let prior = match z % 5 {
        0 => PriorOutcome::Idle,
        1 => PriorOutcome::Moved,
        2 => PriorOutcome::BlockedOnPort,
        3 => PriorOutcome::PortAcquisitionFailed,
        _ => PriorOutcome::Transported,
    };
    let position = match (z >> 3) % 3 {
        0 => LocalPosition::InNode,
        1 => LocalPosition::OnPort(LocalDirection::Left),
        _ => LocalPosition::OnPort(LocalDirection::Right),
    };
    Snapshot {
        position,
        is_landmark: (z >> 5).is_multiple_of(4),
        occupancy: NodeOccupancy {
            in_node: ((z >> 7) % 3) as usize,
            on_left_port: ((z >> 9) % 2) as usize,
            on_right_port: ((z >> 11) % 2) as usize,
        },
        prior,
        round_hint: if (z >> 13).is_multiple_of(2) { Some(round) } else { None },
    }
}

/// Drives `protocol` through `rounds` scrambled snapshots (skipping once it
/// terminates, as the engine would).
fn drive(protocol: &mut dyn Protocol, seed: u64, rounds: u64) {
    for round in 1..=rounds {
        if protocol.has_terminated() {
            break;
        }
        let _ = protocol.decide(&snapshot_from(seed, round));
    }
}

/// The full catalogue instantiated for a small ring — once through the boxed
/// concrete types and once through the statically dispatched
/// [`CatalogProtocol`](dynring_core::CatalogProtocol) enum (itself a
/// `Protocol`, so it must satisfy the same state-copy contract when it
/// crosses a boxed boundary; a boxed enum and a boxed concrete protocol are
/// different types, so copies between them are rightly refused).
fn catalog() -> Vec<Box<dyn Protocol>> {
    let algorithms = Algorithm::full_catalog(8);
    algorithms
        .iter()
        .map(Algorithm::instantiate)
        .chain(algorithms.iter().map(|a| Box::new(a.instantiate_enum()) as Box<dyn Protocol>))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every catalogue protocol: copying a live instance's state into a
    /// stale probe (driven through an unrelated history) leaves the probe
    /// indistinguishable from a fresh `clone_box` — same labels, same debug
    /// state, and identical behaviour on every subsequent activation.
    #[test]
    fn clone_from_box_matches_a_fresh_clone_box(
        live_seed in 0u64..1 << 48,
        probe_seed in 0u64..1 << 48,
        live_rounds in 0u64..60,
        probe_rounds in 0u64..60,
        future_seed in 0u64..1 << 48,
    ) {
        for mut live in catalog() {
            drive(live.as_mut(), live_seed, live_rounds);
            // A stale probe of the same concrete type, in a different state.
            let mut probe = live.clone_box();
            drive(probe.as_mut(), probe_seed, probe_rounds);

            prop_assert!(
                probe.clone_from_box(live.as_ref()),
                "{}: same-type state copy must succeed",
                live.name()
            );
            let mut fresh = live.clone_box();

            prop_assert_eq!(probe.state_label(), fresh.state_label());
            prop_assert_eq!(format!("{probe:?}"), format!("{fresh:?}"));
            prop_assert_eq!(probe.has_terminated(), fresh.has_terminated());

            // The copy and the fresh clone stay in lock-step forever after.
            for round in 1..=40u64 {
                if fresh.has_terminated() {
                    break;
                }
                let snapshot = snapshot_from(future_seed, round);
                prop_assert_eq!(
                    probe.decide(&snapshot),
                    fresh.decide(&snapshot),
                    "{} diverged at round {round}",
                    probe.name()
                );
                prop_assert_eq!(probe.state_label(), fresh.state_label());
                prop_assert_eq!(probe.has_terminated(), fresh.has_terminated());
            }
        }
    }

    /// Copying across different concrete protocol types is refused and
    /// leaves the destination untouched (the pool then falls back to
    /// `clone_box`).
    #[test]
    fn clone_from_box_refuses_type_mismatches(
        seed in 0u64..1 << 48,
        rounds in 0u64..40,
    ) {
        let protocols = catalog();
        for (i, a) in protocols.iter().enumerate() {
            for (j, b) in protocols.iter().enumerate() {
                // `Algorithm::full_catalog` contains distinct parameterisations
                // of shared concrete types (e.g. the three `PtNoChirality`
                // flavours), and same-type copies rightly succeed — only
                // genuinely different types must be refused.
                let same_type = match (a.as_any(), b.as_any()) {
                    (Some(x), Some(y)) => x.type_id() == y.type_id(),
                    _ => false,
                };
                if i == j || same_type {
                    continue;
                }
                let mut dst = a.clone_box();
                drive(dst.as_mut(), seed, rounds);
                let before = format!("{dst:?}");
                prop_assert!(
                    !dst.clone_from_box(b.as_ref()),
                    "{} must refuse state from {}",
                    a.name(),
                    b.name()
                );
                prop_assert_eq!(before, format!("{dst:?}"));
            }
        }
    }
}

/// Every catalogue protocol opts into the state-copy API (`as_any` returns
/// `Some`), so the engine's probe pool never has to fall back to per-round
/// boxing for the paper's algorithms.
#[test]
fn every_catalog_protocol_supports_in_place_copies() {
    for protocol in catalog() {
        assert!(
            protocol.as_any().is_some(),
            "{} does not expose as_any; probe reuse would allocate",
            protocol.name()
        );
        let mut probe = protocol.clone_box();
        assert!(probe.clone_from_box(protocol.as_ref()), "{}", protocol.name());
    }
}
