//! Batched lockstep execution versus the sequential reference, byte for
//! byte.
//!
//! The `SimBatch` engine path steps B same-shape runs per instruction
//! stream; `ScenarioBatchRunner` feeds it groups formed by `group_ranges`.
//! Because every lane owns its RNG streams (scheduler, adversary) and
//! consumes draws exactly as a solo run would, the batched `RunReport`s must
//! equal the solo ones **exactly** — same termination round, same outcome,
//! same per-agent counters — for every catalogue algorithm, both synchrony
//! families, the full seeded-adversary suite, and any lane cap, including
//! ragged tails (suite length not divisible by the cap) and mid-batch early
//! termination (lanes harvested while their batch-mates keep stepping).
//!
//! The companion allocation contract (a loaded batch recycles in place,
//! zero allocations per steady-state generation) lives in
//! `batch_lockstep_alloc.rs`: it needs a counting global allocator, which
//! only yields deterministic readings in a single-test binary.

mod common;

use common::{fnv, golden_scenarios};
use dynring_analysis::batch::{group_ranges, BatchRunner};
use dynring_analysis::scenario::{AdversaryKind, Scenario, ScenarioBatchRunner};
use dynring_analysis::sweeps::{adversary_suite, start_placements};
use dynring_core::{Algorithm, AlgorithmFamily};
use dynring_engine::sim::RunReport;
use proptest::prelude::*;

/// Lane caps exercised everywhere: degenerate (1 = solo fallback), tiny,
/// prime (ragged tails for every suite length), and wider than any suite
/// (one group swallows everything).
const LANE_CAPS: [usize; 4] = [1, 2, 7, 64];

/// Every algorithm of the paper's catalogue, instantiated for ring size `n`.
fn catalogue(n: usize) -> Vec<Algorithm> {
    vec![
        Algorithm::KnownBound { upper_bound: n + 2 },
        Algorithm::Unconscious,
        Algorithm::LandmarkChirality,
        Algorithm::LandmarkNoChirality,
        Algorithm::StartFromLandmarkNoChirality,
        Algorithm::PtBoundChirality { upper_bound: n + 1 },
        Algorithm::PtLandmarkChirality,
        Algorithm::PtBoundNoChirality { upper_bound: n + 1 },
        Algorithm::PtLandmarkNoChirality,
        Algorithm::EtBoundNoChirality { ring_size: n },
        Algorithm::EtUnconscious,
        Algorithm::LoneWalker { patience: 3 },
    ]
}

/// A scenario in the algorithm's natural synchrony model (FSYNC base for the
/// FSYNC/single-agent families, the SSYNC construction otherwise).
fn natural_scenario(n: usize, algorithm: Algorithm, seed: u64) -> Scenario {
    match algorithm.family() {
        AlgorithmFamily::Fsync | AlgorithmFamily::SingleAgent => Scenario::fsync(n, algorithm),
        AlgorithmFamily::SsyncPt | AlgorithmFamily::SsyncEt => Scenario::ssync(n, algorithm, seed),
    }
}

/// Runs `scenarios` through the batched path with an explicit lane cap,
/// group by group in input order.
fn batched_with_cap(scenarios: &[Scenario], cap: usize) -> Vec<RunReport> {
    let mut runner = ScenarioBatchRunner::new();
    let mut out = Vec::with_capacity(scenarios.len());
    for range in group_ranges(scenarios, |scenario| scenario, cap) {
        runner.run_group_into(&scenarios[range], &mut out);
    }
    out
}

/// The sequential reference: one fresh solo simulation per scenario.
fn sequential(scenarios: &[Scenario]) -> Vec<RunReport> {
    scenarios.iter().map(Scenario::run).collect()
}

/// The full catalogue under the seeded-adversary suite: for every algorithm
/// and every lane cap, the batched reports equal the solo reports exactly.
/// The suite mixes fast-terminating lanes (static dynamics) with
/// budget-exhausting ones (blocked edges), so the early-harvest / lane
/// compaction machinery is exercised in every batch.
#[test]
fn catalogue_batched_equals_sequential_for_every_lane_cap() {
    let n = 7;
    for algorithm in catalogue(n) {
        let scenarios: Vec<Scenario> = adversary_suite(n, 11)
            .into_iter()
            .map(|adversary| natural_scenario(n, algorithm, 11).with_adversary(adversary))
            .collect();
        let reference = sequential(&scenarios);
        for cap in LANE_CAPS {
            assert_eq!(
                batched_with_cap(&scenarios, cap),
                reference,
                "{algorithm:?} diverged at lane cap {cap}"
            );
        }
    }
}

/// Placement diversity inside one batch: every lane of a group may start its
/// team elsewhere (and flip orientations); the reports still match solo.
#[test]
fn placement_mixes_batch_identically() {
    let n = 9;
    let algorithm = Algorithm::LandmarkNoChirality;
    let mut scenarios = Vec::new();
    for placement in start_placements(n, 2) {
        for flipped in [false, true] {
            let mut scenario = Scenario::fsync(n, algorithm).with_starts(placement.clone());
            if flipped {
                let mut orientations = scenario.orientations.clone();
                orientations.reverse();
                scenario = scenario.with_orientations(orientations);
            }
            scenarios.push(scenario);
        }
    }
    let reference = sequential(&scenarios);
    for cap in LANE_CAPS {
        assert_eq!(batched_with_cap(&scenarios, cap), reference, "lane cap {cap}");
    }
}

/// A shape-heterogeneous battery (different ring sizes, synchrony models and
/// a trace-recording cell) splits into groups such that batched execution is
/// still byte-identical — shape changes open fresh groups without disturbing
/// their neighbours, while trace cells batch with their shape-mates (the
/// columnar trace records on the batched path).
#[test]
fn mixed_shape_battery_groups_and_matches() {
    let scenarios = vec![
        Scenario::fsync(6, Algorithm::KnownBound { upper_bound: 6 }),
        Scenario::fsync(6, Algorithm::Unconscious),
        Scenario::fsync(6, Algorithm::KnownBound { upper_bound: 6 }).with_trace(),
        Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 }),
        Scenario::ssync(6, Algorithm::PtBoundChirality { upper_bound: 6 }, 3),
        Scenario::ssync(6, Algorithm::PtLandmarkChirality, 4),
        Scenario::fsync(6, Algorithm::LandmarkChirality),
    ];
    // The trace cell shares its neighbours' shape, so it batches with them
    // instead of sitting in a singleton group.
    let ranges = group_ranges(&scenarios, |scenario| scenario, 64);
    assert!(ranges.contains(&(0..3)), "trace cell not batched with its shape-mates: {ranges:?}");
    let reference = sequential(&scenarios);
    for cap in LANE_CAPS {
        assert_eq!(batched_with_cap(&scenarios, cap), reference, "lane cap {cap}");
    }
    // The public parallel executor rides the same grouping.
    assert_eq!(BatchRunner::sequential().run_reports(&scenarios), reference);
}

/// Digest of one cell's full `(RunReport, Trace)` execution record from a
/// fresh solo simulation — the same rendering `tests/determinism.rs` pins.
fn solo_trace_digest(scenario: &Scenario) -> u64 {
    let mut sim = scenario.build();
    let report = sim.run(scenario.max_rounds, scenario.stop);
    let trace = sim.trace().expect("trace-on cell records a trace");
    fnv(&format!("{report:?}|{trace:?}"))
}

/// Batched per-cell `(RunReport, Trace)` digests at lane cap `cap`. Each
/// group's traces are read back before the runner loads the next group
/// (loading reuses the lane buffers, so traces only live until then).
fn batched_trace_digests(scenarios: &[Scenario], cap: usize) -> Vec<u64> {
    let mut runner = ScenarioBatchRunner::new();
    let mut out = Vec::with_capacity(scenarios.len());
    let mut reports = Vec::new();
    for range in group_ranges(scenarios, |scenario| scenario, cap) {
        reports.clear();
        runner.run_group_into(&scenarios[range], &mut reports);
        for (index, report) in reports.iter().enumerate() {
            let trace =
                runner.trace(index).expect("trace-on cell records on the batched path");
            out.push(fnv(&format!("{report:?}|{trace:?}")));
        }
    }
    out
}

/// Trace-on cells across the full catalogue and adversary suite: at every
/// lane cap the batched traces digest identically to fresh solo runs —
/// recording on the batched path is observably the same columnar append
/// stream as the solo step.
#[test]
fn trace_on_cells_batch_byte_identically_at_every_lane_cap() {
    let n = 7;
    for algorithm in catalogue(n) {
        let scenarios: Vec<Scenario> = adversary_suite(n, 11)
            .into_iter()
            .map(|adversary| {
                natural_scenario(n, algorithm, 11).with_adversary(adversary).with_trace()
            })
            .collect();
        let reference: Vec<u64> = scenarios.iter().map(solo_trace_digest).collect();
        for cap in LANE_CAPS {
            assert_eq!(
                batched_trace_digests(&scenarios, cap),
                reference,
                "{algorithm:?} traces diverged at lane cap {cap}"
            );
        }
    }
}

/// Mixed trace-on/trace-off lanes inside one group: recording stays strictly
/// per lane (off-lanes expose no trace), the reports still match solo, and
/// the traced lanes digest identically to their solo runs.
#[test]
fn mixed_trace_lanes_record_only_where_enabled() {
    let n = 8;
    let scenarios: Vec<Scenario> = adversary_suite(n, 5)
        .into_iter()
        .enumerate()
        .map(|(index, adversary)| {
            let scenario = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
                .with_adversary(adversary);
            if index % 2 == 0 {
                scenario.with_trace()
            } else {
                scenario
            }
        })
        .collect();
    let reference = sequential(&scenarios);
    let mut runner = ScenarioBatchRunner::new();
    let reports = runner.run_group(&scenarios);
    assert_eq!(reports, reference);
    for (index, scenario) in scenarios.iter().enumerate() {
        match runner.trace(index) {
            Some(trace) => {
                assert!(scenario.record_trace, "lane {index} recorded without asking");
                let digest = fnv(&format!("{:?}|{trace:?}", reports[index]));
                assert_eq!(digest, solo_trace_digest(scenario), "lane {index}");
            }
            None => assert!(!scenario.record_trace, "lane {index} lost its trace"),
        }
    }
}

/// The pinned pre-refactor golden digests, reproduced through the *batched*
/// engine path: each golden scenario is doubled into a two-lane group (so it
/// cannot ride the solo fallback) and both lanes must digest to the pinned
/// value.
#[test]
fn batched_trace_lanes_reproduce_the_pinned_golden_digests() {
    for (name, scenario, expected) in golden_scenarios() {
        let group = vec![scenario.clone(), scenario];
        let mut runner = ScenarioBatchRunner::new();
        let reports = runner.run_group(&group);
        for (index, report) in reports.iter().enumerate() {
            let trace = runner.trace(index).expect("golden scenarios record traces");
            let digest = fnv(&format!("{report:?}|{trace:?}"));
            assert_eq!(
                digest, expected,
                "{name} lane {index}: batched execution drifted from the \
                 pre-refactor engine (got {digest:#018x}, pinned {expected:#018x})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seed/placement mixes: lanes of one batch differ in starts,
    /// adversary seed and presence probability, and the batch still equals
    /// solo execution at an arbitrary lane cap.
    #[test]
    fn random_seed_and_placement_mixes_are_lane_cap_invariant(
        n in 5usize..10,
        first in 0usize..16,
        second in 0usize..16,
        seed in 0u64..64,
        cap in 1usize..9,
    ) {
        let algorithm = Algorithm::KnownBound { upper_bound: n };
        let mut scenarios = Vec::new();
        for lane in 0..6u64 {
            let starts = vec![(first + lane as usize) % n, second % n];
            let adversary = if lane % 2 == 0 {
                AdversaryKind::Random { p: 0.6, seed: seed.wrapping_add(lane) }
            } else {
                AdversaryKind::Sticky {
                    min_hold: 1,
                    max_hold: n as u64,
                    present: 0.4,
                    seed: seed.wrapping_mul(31).wrapping_add(lane),
                }
            };
            scenarios.push(
                Scenario::fsync(n, algorithm).with_starts(starts).with_adversary(adversary),
            );
        }
        prop_assert_eq!(batched_with_cap(&scenarios, cap), sequential(&scenarios));
    }

    /// Mid-batch early termination: one lane meets immediately (co-located
    /// team, static ring), siblings fight blocking adversaries for orders of
    /// magnitude longer. Harvesting the early lane must not shift any
    /// surviving lane's RNG streams or round counters.
    #[test]
    fn early_terminating_lanes_leave_survivors_untouched(
        n in 5usize..9,
        seed in 0u64..64,
        cap in 2usize..8,
    ) {
        let algorithm = Algorithm::KnownBound { upper_bound: n };
        let co_located = Scenario::fsync(n, algorithm).with_starts(vec![0, 0]);
        let blocked = Scenario::fsync(n, algorithm)
            .with_adversary(AdversaryKind::BlockForever { edge: n / 2 });
        let random = Scenario::fsync(n, algorithm)
            .with_adversary(AdversaryKind::Random { p: 0.8, seed });
        let scenarios =
            vec![blocked.clone(), co_located.clone(), random, co_located, blocked];
        prop_assert_eq!(batched_with_cap(&scenarios, cap), sequential(&scenarios));
    }
}
