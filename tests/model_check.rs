//! Exhaustive model checking of the Table 1/3 impossibility rows on small
//! rings, plus the soundness properties the search rests on: every adversary
//! play is explored, every discovered witness schedule replays through a
//! scripted adversary to the same defeat, and the canonical configuration key
//! is invariant under the ring's rotation/reflection symmetries.

use dynring_analysis::model_check::{self, ModelCheck, Objective};
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use dynring_core::Algorithm;
use dynring_engine::StopCondition;
use dynring_graph::{EdgeId, Handedness};
use dynring_model::SynchronyModel;
use proptest::prelude::*;

/// The machine-checked acceptance matrix: every exhaustively checkable
/// Table 1/3 cell for `4 ≤ n ≤ 8` resolves to the verdict the paper predicts,
/// and every impossibility witness replays through
/// [`AdversaryKind::Scripted`] to the same non-achievement outcome.
#[test]
fn every_table1_and_table3_row_is_proven_for_small_n() {
    for n in 4..=8 {
        for cell in model_check::infeasibility_cells(n) {
            let verdict = cell.check.run();
            if cell.expect_infeasible {
                let proof = verdict.infeasible().unwrap_or_else(|| {
                    panic!("{} ({}) must be infeasible", cell.id, cell.claim)
                });
                let replay = cell.check.replay(&proof.witness);
                assert!(
                    cell.check.objective.defeated_in(&replay),
                    "{}: the discovered witness (horizon {}) does not reproduce the \
                     {} defeat when replayed through a scripted adversary: {replay:?}",
                    cell.id,
                    proof.witness.horizon(),
                    cell.check.objective.label(),
                );
            } else {
                assert!(
                    verdict.is_feasible(),
                    "{} ({}) must be feasible, got {verdict:?}",
                    cell.id,
                    cell.claim
                );
            }
        }
    }
}

/// Satellite: the hand-scripted schedules of `lower_bounds` must be no
/// stronger than the exhaustively discovered worst case — the script is a
/// regression pin, the search is the source of truth. On every checkable size
/// the discovered worst case is exactly the paper's `3n − 6`.
#[test]
fn figure2_script_is_pinned_by_the_discovered_worst_case() {
    for n in 5..=7 {
        let (discovered, scripted) = model_check::cross_validate_figure2(n);
        assert_eq!(
            discovered,
            3 * n as u64 - 6,
            "n={n}: the exhaustive worst case should equal the paper's 3n-6"
        );
        assert_eq!(
            scripted,
            3 * n as u64 - 6,
            "n={n}: the Figure 2 script should force exactly 3n-6"
        );
    }
}

/// The scenario cell a catalogue algorithm is checked in: the algorithm's
/// natural synchrony/scheduler with deterministic parameters.
fn catalog_cell(n: usize, algorithm: Algorithm, seed: u64) -> Scenario {
    match algorithm.synchrony() {
        SynchronyModel::Fsync => Scenario::fsync(n, algorithm),
        SynchronyModel::Ssync(_) => Scenario::ssync(n, algorithm, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: soundness of `Verdict::Feasible` — if the exhaustive search
    /// says the objective is achieved on **every** play within the depth
    /// bound, then a sampled (randomised-adversary) run of the same cell must
    /// also achieve it within the bound.
    #[test]
    fn feasible_verdicts_imply_sampled_sweeps_succeed(
        n in 4usize..7,
        pick in 0usize..64,
        seed in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let depth = 4 * n as u64;
        let check = ModelCheck::new(catalog_cell(n, algorithm, 1), Objective::Explore, depth);
        if let Some(proof) = check.run().feasible() {
            // Any play explores by `depth`; a sampled sticky-random play is
            // one such play.
            let mut scenario = check.scenario.clone();
            scenario.adversary = AdversaryKind::Sticky {
                min_hold: 1,
                max_hold: n as u64,
                present: 0.3,
                seed,
            };
            scenario.stop = StopCondition::Explored;
            scenario.max_rounds = depth;
            let report = scenario.run();
            prop_assert!(
                report.explored(),
                "{algorithm} n={n}: exhaustive search proved exploration by round {depth} \
                 on every play (worst {}), but the sampled play explored only {}/{n} nodes",
                proof.worst_round,
                report.visited_count,
            );
        }
    }

    /// Satellite: the canonical configuration key quotients exactly the ring
    /// symmetries — rotating a whole cell (starts, landmark, forced edges)
    /// yields bit-identical keys at every round.
    #[test]
    fn canonical_keys_are_rotation_invariant(
        n in 4usize..9,
        pick in 0usize..64,
        start_a in 0usize..8,
        start_b in 0usize..8,
        shift in 1usize..8,
        schedule_bits in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let shift = shift % n;
        let agents = algorithm.required_agents();
        let starts: Vec<usize> =
            [start_a % n, start_b % n, (start_a + start_b) % n][..agents.min(3)].to_vec();
        if starts.is_empty() { return Ok(()); }

        let base = catalog_cell(n, algorithm, 1).with_starts(starts.clone());
        let mut rotated = catalog_cell(n, algorithm, 1)
            .with_starts(starts.iter().map(|&s| (s + shift) % n).collect());
        rotated.landmark = base.landmark.map(|l| (l + shift) % n);

        let check_a = ModelCheck::new(base, Objective::Explore, 1);
        let check_b = ModelCheck::new(rotated, Objective::Explore, 1);
        let mut sim_a = check_a.branchable_simulation();
        let mut sim_b = check_b.branchable_simulation();
        let ring_a = check_a.scenario.ring();
        let ring_b = check_b.scenario.ring();
        let (mut key_a, mut key_b) = (Vec::new(), Vec::new());
        for round in 0..8u32 {
            // Pseudo-random forced choice, mapped through the rotation.
            let choice = (schedule_bits >> (8 * round)) as usize % (n + 1);
            let (edge_a, edge_b) = if choice < n {
                (Some(EdgeId::new(choice)), Some(EdgeId::new((choice + shift) % n)))
            } else {
                (None, None)
            };
            sim_a.step_with_edge(edge_a);
            sim_b.step_with_edge(edge_b);
            sim_a.checkpoint().canonical_key(&ring_a, &mut key_a);
            sim_b.checkpoint().canonical_key(&ring_b, &mut key_b);
            prop_assert_eq!(
                &key_a, &key_b,
                "{} n={} shift={} diverged at round {}", algorithm, n, shift, round
            );
        }
    }

    /// Satellite: reflecting a whole cell through node 0 (mirrored starts and
    /// forced edges, flipped orientations) also yields bit-identical keys.
    #[test]
    fn canonical_keys_are_reflection_invariant(
        n in 4usize..9,
        pick in 0usize..64,
        start_a in 0usize..8,
        start_b in 0usize..8,
        schedule_bits in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let agents = algorithm.required_agents();
        let starts: Vec<usize> =
            [start_a % n, start_b % n, (start_a + start_b) % n][..agents.min(3)].to_vec();
        if starts.is_empty() { return Ok(()); }
        let orientations: Vec<Handedness> = (0..agents)
            .map(|i| if (schedule_bits >> i) & 1 == 0 {
                Handedness::LeftIsCcw
            } else {
                Handedness::LeftIsCw
            })
            .collect();
        let flip = |h: Handedness| match h {
            Handedness::LeftIsCcw => Handedness::LeftIsCw,
            Handedness::LeftIsCw => Handedness::LeftIsCcw,
        };

        let base = catalog_cell(n, algorithm, 1)
            .with_starts(starts.clone())
            .with_orientations(orientations.clone());
        // Reflection through node 0: node v -> (n - v) % n fixes the default
        // landmark 0; edge e = (e, e+1) -> (n - 1 - e).
        let mirrored = catalog_cell(n, algorithm, 1)
            .with_starts(starts.iter().map(|&s| (n - s) % n).collect())
            .with_orientations(orientations.iter().map(|&h| flip(h)).collect());

        let check_a = ModelCheck::new(base, Objective::Explore, 1);
        let check_b = ModelCheck::new(mirrored, Objective::Explore, 1);
        let mut sim_a = check_a.branchable_simulation();
        let mut sim_b = check_b.branchable_simulation();
        let ring = check_a.scenario.ring();
        let (mut key_a, mut key_b) = (Vec::new(), Vec::new());
        for round in 0..8u32 {
            let choice = (schedule_bits >> (8 * round)) as usize % (n + 1);
            let (edge_a, edge_b) = if choice < n {
                (Some(EdgeId::new(choice)), Some(EdgeId::new(n - 1 - choice)))
            } else {
                (None, None)
            };
            sim_a.step_with_edge(edge_a);
            sim_b.step_with_edge(edge_b);
            sim_a.checkpoint().canonical_key(&ring, &mut key_a);
            sim_b.checkpoint().canonical_key(&ring, &mut key_b);
            prop_assert_eq!(
                &key_a, &key_b,
                "{} n={} diverged at round {}", algorithm, n, round
            );
        }
    }
}
