//! Exhaustive model checking of the Table 1/3 impossibility rows on small
//! rings, plus the soundness properties the search rests on: every adversary
//! play is explored, every discovered witness schedule replays through a
//! scripted adversary to the same defeat, and the canonical configuration key
//! is invariant under the ring's rotation/reflection symmetries.

use dynring_analysis::model_check::{self, ModelCheck, Objective, Verdict};
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use dynring_core::Algorithm;
use dynring_engine::StopCondition;
use dynring_graph::{EdgeId, Handedness};
use dynring_model::SynchronyModel;
use proptest::prelude::*;

/// The machine-checked acceptance matrix: every exhaustively checkable
/// Table 1/3 cell for `4 ≤ n ≤ max_check_n` (default 9, `DYNRING_MC_MAX_N`
/// raises it) resolves to the verdict the paper predicts, and every
/// impossibility witness replays through [`AdversaryKind::Scripted`] to the
/// same non-achievement outcome.
#[test]
fn every_table1_and_table3_row_is_proven_for_small_n() {
    for n in 4..=model_check::max_check_n(9) {
        for cell in model_check::infeasibility_cells(n) {
            let verdict = cell.check.run();
            if cell.expect_infeasible {
                let proof = verdict.infeasible().unwrap_or_else(|| {
                    panic!("{} ({}) must be infeasible", cell.id, cell.claim)
                });
                let replay = cell.check.replay(&proof.witness);
                assert!(
                    cell.check.objective.defeated_in(&replay),
                    "{}: the discovered witness (horizon {}) does not reproduce the \
                     {} defeat when replayed through a scripted adversary: {replay:?}",
                    cell.id,
                    proof.witness.horizon(),
                    cell.check.objective.label(),
                );
            } else {
                assert!(
                    verdict.is_feasible(),
                    "{} ({}) must be feasible, got {verdict:?}",
                    cell.id,
                    cell.claim
                );
            }
        }
    }
}

/// Satellite: the hand-scripted schedules of `lower_bounds` must be no
/// stronger than the exhaustively discovered worst case — the script is a
/// regression pin, the search is the source of truth. On every checkable size
/// the discovered worst case is exactly the paper's `3n − 6`.
#[test]
fn figure2_script_is_pinned_by_the_discovered_worst_case() {
    for n in 5..=7 {
        let (discovered, scripted) = model_check::cross_validate_figure2(n);
        assert_eq!(
            discovered,
            3 * n as u64 - 6,
            "n={n}: the exhaustive worst case should equal the paper's 3n-6"
        );
        assert_eq!(
            scripted,
            3 * n as u64 - 6,
            "n={n}: the Figure 2 script should force exactly 3n-6"
        );
    }
}

/// Tentpole: the level-synchronous parallel search is bit-equivalent to the
/// sequential reference over **every** packaged Table 1/3 cell plus the
/// Theorem 4 lower-bound cell — identical [`SearchStats`], verdicts, and
/// witness/worst schedules. The parallel merge replays chunk records in
/// sequential order, so nothing weaker than equality is acceptable.
#[test]
fn parallel_search_is_bit_identical_to_sequential() {
    for n in 4..=7 {
        let mut checks: Vec<(String, ModelCheck)> = model_check::infeasibility_cells(n)
            .into_iter()
            .map(|cell| (cell.id.clone(), cell.check))
            .collect();
        if n >= 5 {
            checks.push((format!("theorem4(n={n})"), model_check::theorem4_cell(n)));
        }
        for (id, check) in checks {
            let sequential = check.run_with_threads(1);
            let parallel = check.run_with_threads(4);
            assert_eq!(
                sequential.stats(),
                parallel.stats(),
                "{id}: parallel search stats diverged from sequential"
            );
            match (&sequential, &parallel) {
                (Verdict::Infeasible(s), Verdict::Infeasible(p)) => {
                    assert_eq!(s.witness, p.witness, "{id}: witness schedules diverged");
                    assert_eq!(s.defeat_round, p.defeat_round, "{id}: defeat rounds diverged");
                    assert_eq!(s.proof_depth, p.proof_depth, "{id}: proof depths diverged");
                }
                (Verdict::Feasible(s), Verdict::Feasible(p)) => {
                    assert_eq!(
                        s.worst_schedule, p.worst_schedule,
                        "{id}: worst schedules diverged"
                    );
                    assert_eq!(s.worst_round, p.worst_round, "{id}: worst rounds diverged");
                }
                (s, p) => panic!("{id}: verdicts diverged: sequential {s:?} vs parallel {p:?}"),
            }
        }
    }
}

/// Tentpole: dedup on the legacy `Debug`-string key and on the packed binary
/// key must agree on every verdict and every witness — both encodings are
/// injective per candidate mapping, so the lexicographic minimum lands on the
/// same orbit representative and the searches prune identically.
#[test]
fn debug_key_search_agrees_with_packed_key_search() {
    for n in 4..=5 {
        for cell in model_check::infeasibility_cells(n) {
            let packed = cell.check.run_with_threads(1);
            let mut debug_check = cell.check.clone();
            debug_check.use_debug_key = true;
            let debug = debug_check.run_with_threads(1);
            assert_eq!(
                packed.stats(),
                debug.stats(),
                "{}: packed-key search stats diverged from Debug-key search",
                cell.id
            );
            assert_eq!(
                packed.is_feasible(),
                debug.is_feasible(),
                "{}: verdicts diverged between key encodings",
                cell.id
            );
            if let (Some(p), Some(d)) = (packed.infeasible(), debug.infeasible()) {
                assert_eq!(p.witness, d.witness, "{}: witnesses diverged", cell.id);
            }
        }
    }
}

/// The scenario cell a catalogue algorithm is checked in: the algorithm's
/// natural synchrony/scheduler with deterministic parameters.
fn catalog_cell(n: usize, algorithm: Algorithm, seed: u64) -> Scenario {
    match algorithm.synchrony() {
        SynchronyModel::Fsync => Scenario::fsync(n, algorithm),
        SynchronyModel::Ssync(_) => Scenario::ssync(n, algorithm, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: soundness of `Verdict::Feasible` — if the exhaustive search
    /// says the objective is achieved on **every** play within the depth
    /// bound, then a sampled (randomised-adversary) run of the same cell must
    /// also achieve it within the bound.
    #[test]
    fn feasible_verdicts_imply_sampled_sweeps_succeed(
        n in 4usize..7,
        pick in 0usize..64,
        seed in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let depth = 4 * n as u64;
        let check = ModelCheck::new(catalog_cell(n, algorithm, 1), Objective::Explore, depth);
        if let Some(proof) = check.run().feasible() {
            // Any play explores by `depth`; a sampled sticky-random play is
            // one such play.
            let mut scenario = check.scenario.clone();
            scenario.adversary = AdversaryKind::Sticky {
                min_hold: 1,
                max_hold: n as u64,
                present: 0.3,
                seed,
            };
            scenario.stop = StopCondition::Explored;
            scenario.max_rounds = depth;
            let report = scenario.run();
            prop_assert!(
                report.explored(),
                "{algorithm} n={n}: exhaustive search proved exploration by round {depth} \
                 on every play (worst {}), but the sampled play explored only {}/{n} nodes",
                proof.worst_round,
                report.visited_count,
            );
        }
    }

    /// Satellite: the canonical configuration key quotients exactly the ring
    /// symmetries — rotating a whole cell (starts, landmark, forced edges)
    /// yields bit-identical keys at every round.
    #[test]
    fn canonical_keys_are_rotation_invariant(
        n in 4usize..9,
        pick in 0usize..64,
        start_a in 0usize..8,
        start_b in 0usize..8,
        shift in 1usize..8,
        schedule_bits in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let shift = shift % n;
        let agents = algorithm.required_agents();
        let starts: Vec<usize> =
            [start_a % n, start_b % n, (start_a + start_b) % n][..agents.min(3)].to_vec();
        if starts.is_empty() { return Ok(()); }

        let base = catalog_cell(n, algorithm, 1).with_starts(starts.clone());
        let mut rotated = catalog_cell(n, algorithm, 1)
            .with_starts(starts.iter().map(|&s| (s + shift) % n).collect());
        rotated.landmark = base.landmark.map(|l| (l + shift) % n);

        let check_a = ModelCheck::new(base, Objective::Explore, 1);
        let check_b = ModelCheck::new(rotated, Objective::Explore, 1);
        let mut sim_a = check_a.branchable_simulation();
        let mut sim_b = check_b.branchable_simulation();
        let ring_a = check_a.scenario.ring();
        let ring_b = check_b.scenario.ring();
        let (mut key_a, mut key_b) = (Vec::new(), Vec::new());
        for round in 0..8u32 {
            // Pseudo-random forced choice, mapped through the rotation.
            let choice = (schedule_bits >> (8 * round)) as usize % (n + 1);
            let (edge_a, edge_b) = if choice < n {
                (Some(EdgeId::new(choice)), Some(EdgeId::new((choice + shift) % n)))
            } else {
                (None, None)
            };
            sim_a.step_with_edge(edge_a);
            sim_b.step_with_edge(edge_b);
            sim_a.checkpoint().canonical_key(&ring_a, &mut key_a);
            sim_b.checkpoint().canonical_key(&ring_b, &mut key_b);
            prop_assert_eq!(
                &key_a, &key_b,
                "{} n={} shift={} diverged at round {}", algorithm, n, shift, round
            );
        }
    }

    /// Tentpole: the packed binary key induces **exactly** the same
    /// equivalence classes as the legacy `Debug`-string key. Two
    /// configurations — one a random rotation/reflection of the other, or a
    /// genuinely different cell (perturbed start) — have equal packed keys if
    /// and only if they have equal `Debug` keys, at every round of a random
    /// forced-edge play.
    #[test]
    fn packed_key_classes_match_debug_key_classes(
        n in 4usize..9,
        pick in 0usize..64,
        start_a in 0usize..8,
        start_b in 0usize..8,
        shift in 0usize..8,
        reflect in any::<bool>(),
        perturb in any::<bool>(),
        schedule_bits in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let shift = shift % n;
        let agents = algorithm.required_agents();
        let starts: Vec<usize> =
            [start_a % n, start_b % n, (start_a + start_b) % n][..agents.min(3)].to_vec();
        if starts.is_empty() { return Ok(()); }

        // The comparison cell: a symmetry image of the base (equal classes
        // expected) or a perturbed sibling (usually distinct classes) —
        // either way both encodings must agree on equality.
        let map = |v: usize| {
            let rotated = (v + shift) % n;
            if reflect { (n - rotated) % n } else { rotated }
        };
        let base = catalog_cell(n, algorithm, 1).with_starts(starts.clone());
        let mut other = catalog_cell(n, algorithm, 1).with_starts(
            starts
                .iter()
                .map(|&s| if perturb { (s + 1) % n } else { map(s) })
                .collect(),
        );
        if !perturb {
            other.landmark = base.landmark.map(map);
            if reflect {
                other.orientations = base
                    .orientations
                    .iter()
                    .map(|&h| match h {
                        Handedness::LeftIsCcw => Handedness::LeftIsCw,
                        Handedness::LeftIsCw => Handedness::LeftIsCcw,
                    })
                    .collect();
            }
        }

        let check_a = ModelCheck::new(base, Objective::Explore, 1);
        let check_b = ModelCheck::new(other, Objective::Explore, 1);
        let mut sim_a = check_a.branchable_simulation();
        let mut sim_b = check_b.branchable_simulation();
        let ring = check_a.scenario.ring();
        let (mut packed_a, mut packed_b) = (Vec::new(), Vec::new());
        let (mut debug_a, mut debug_b) = (Vec::new(), Vec::new());
        for round in 0..8u32 {
            let choice = (schedule_bits >> (8 * round)) as usize % (n + 1);
            let edge_a = (choice < n).then(|| EdgeId::new(choice));
            let edge_b = if perturb {
                edge_a
            } else {
                // Map the forced edge through the same symmetry: edge
                // e = (e, e+1) rotates to e + shift and reflects to
                // (n - 1) - e.
                (choice < n).then(|| {
                    let rotated = (choice + shift) % n;
                    EdgeId::new(if reflect { (n + n - 1 - rotated) % n } else { rotated })
                })
            };
            sim_a.step_with_edge(edge_a);
            sim_b.step_with_edge(edge_b);
            let cp_a = sim_a.checkpoint();
            let cp_b = sim_b.checkpoint();
            cp_a.canonical_key(&ring, &mut packed_a);
            cp_b.canonical_key(&ring, &mut packed_b);
            cp_a.canonical_key_debug(&ring, &mut debug_a);
            cp_b.canonical_key_debug(&ring, &mut debug_b);
            prop_assert_eq!(
                packed_a == packed_b,
                debug_a == debug_b,
                "{} n={} shift={} reflect={} perturb={}: encodings disagree at round {} \
                 (packed equal: {}, debug equal: {})",
                algorithm, n, shift, reflect, perturb, round,
                packed_a == packed_b, debug_a == debug_b
            );
        }
    }

    /// Satellite: reflecting a whole cell through node 0 (mirrored starts and
    /// forced edges, flipped orientations) also yields bit-identical keys.
    #[test]
    fn canonical_keys_are_reflection_invariant(
        n in 4usize..9,
        pick in 0usize..64,
        start_a in 0usize..8,
        start_b in 0usize..8,
        schedule_bits in any::<u64>(),
    ) {
        let catalog = Algorithm::full_catalog(n);
        let algorithm = catalog[pick % catalog.len()];
        let agents = algorithm.required_agents();
        let starts: Vec<usize> =
            [start_a % n, start_b % n, (start_a + start_b) % n][..agents.min(3)].to_vec();
        if starts.is_empty() { return Ok(()); }
        let orientations: Vec<Handedness> = (0..agents)
            .map(|i| if (schedule_bits >> i) & 1 == 0 {
                Handedness::LeftIsCcw
            } else {
                Handedness::LeftIsCw
            })
            .collect();
        let flip = |h: Handedness| match h {
            Handedness::LeftIsCcw => Handedness::LeftIsCw,
            Handedness::LeftIsCw => Handedness::LeftIsCcw,
        };

        let base = catalog_cell(n, algorithm, 1)
            .with_starts(starts.clone())
            .with_orientations(orientations.clone());
        // Reflection through node 0: node v -> (n - v) % n fixes the default
        // landmark 0; edge e = (e, e+1) -> (n - 1 - e).
        let mirrored = catalog_cell(n, algorithm, 1)
            .with_starts(starts.iter().map(|&s| (n - s) % n).collect())
            .with_orientations(orientations.iter().map(|&h| flip(h)).collect());

        let check_a = ModelCheck::new(base, Objective::Explore, 1);
        let check_b = ModelCheck::new(mirrored, Objective::Explore, 1);
        let mut sim_a = check_a.branchable_simulation();
        let mut sim_b = check_b.branchable_simulation();
        let ring = check_a.scenario.ring();
        let (mut key_a, mut key_b) = (Vec::new(), Vec::new());
        for round in 0..8u32 {
            let choice = (schedule_bits >> (8 * round)) as usize % (n + 1);
            let (edge_a, edge_b) = if choice < n {
                (Some(EdgeId::new(choice)), Some(EdgeId::new(n - 1 - choice)))
            } else {
                (None, None)
            };
            sim_a.step_with_edge(edge_a);
            sim_b.step_with_edge(edge_b);
            sim_a.checkpoint().canonical_key(&ring, &mut key_a);
            sim_b.checkpoint().canonical_key(&ring, &mut key_b);
            prop_assert_eq!(
                &key_a, &key_b,
                "{} n={} diverged at round {}", algorithm, n, round
            );
        }
    }
}
