//! Enum dispatch ≡ boxed dispatch, for every catalogue protocol.
//!
//! The engine runs catalogue agents through a statically dispatched
//! [`CatalogProtocol`](dynring_core::CatalogProtocol) by default (see
//! `docs/ARCHITECTURE.md`, "The dispatch story") and keeps the virtual
//! `Box<dyn Protocol>` path as the extension escape hatch. That is only
//! sound if the representation is **unobservable**: for any scenario, the
//! enum-dispatched run must produce the identical `RunReport` and the
//! identical trace — decisions, outcomes, state labels, every field of every
//! round record — as the boxed run. These tests pin that equivalence for
//! every algorithm of the catalogue across FSYNC and SSYNC and across all
//! three prediction-fusion tiers (prediction off, omniscient edge policy,
//! predicting scheduler).

use dynring_analysis::scenario::{AdversaryKind, DispatchKind, Scenario, SchedulerKind};
use dynring_core::Algorithm;
use proptest::prelude::*;

/// FNV-1a over the debug rendering of the full execution record (the same
/// digest the golden tests in `tests/determinism.rs` use): two runs digest
/// equal iff they are observably identical.
fn execution_digest(scenario: &Scenario) -> (dynring_engine::sim::RunReport, u64) {
    let mut sim = scenario.build();
    let report = sim.run(scenario.max_rounds, scenario.stop);
    let trace = sim.trace().expect("equivalence scenarios record traces");
    let rendered = format!("{report:?}|{trace:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (report, hash)
}

/// Asserts that the enum- and dyn-dispatched runs of `scenario` are
/// observably identical.
fn assert_dispatch_equivalent(name: &str, scenario: Scenario) {
    let (enum_report, enum_digest) =
        execution_digest(&scenario.clone().with_dispatch(DispatchKind::Enum));
    let (dyn_report, dyn_digest) =
        execution_digest(&scenario.with_dispatch(DispatchKind::Dyn));
    assert_eq!(enum_report, dyn_report, "{name}: run reports diverged");
    assert_eq!(
        enum_digest, dyn_digest,
        "{name}: trace digests diverged (got {enum_digest:#018x} enum, {dyn_digest:#018x} dyn)"
    );
}

/// The scenario battery for one algorithm: FSYNC and SSYNC base runs plus
/// one variant per prediction-fusion tier. (For FSYNC-family algorithms the
/// `ssync` constructor keeps the FSYNC model — `Scenario::ssync` respects
/// `Algorithm::synchrony` — so the SSYNC variants degrade to further FSYNC
/// coverage rather than running an algorithm off-model.)
fn battery(algorithm: Algorithm, ring_size: usize, seed: u64) -> Vec<(String, Scenario)> {
    let fsync = Scenario::fsync(ring_size, algorithm).with_trace();
    let ssync = Scenario::ssync(ring_size, algorithm, seed).with_trace();
    vec![
        (format!("{algorithm}/fsync"), fsync.clone()),
        // FSYNC fusion tier: the dry run is the round's Compute step.
        (
            format!("{algorithm}/fsync/prevent-meeting"),
            fsync.with_adversary(AdversaryKind::PreventMeeting),
        ),
        (format!("{algorithm}/ssync"), ssync.clone()),
        // Deferred tier: only the edge policy reads predictions.
        (
            format!("{algorithm}/ssync/prevent-meeting"),
            ssync.clone().with_adversary(AdversaryKind::PreventMeeting),
        ),
        // Predicting-scheduler tier: full probe pass + post-Compute swap.
        (
            format!("{algorithm}/ssync/first-mover-only"),
            ssync.with_scheduler(SchedulerKind::FirstMoverOnly),
        ),
    ]
}

/// Exhaustive: every catalogue algorithm, every prediction-fusion tier, at a
/// fixed representative size.
#[test]
fn enum_and_boxed_dispatch_are_observably_identical_for_the_whole_catalog() {
    for algorithm in Algorithm::full_catalog(8) {
        for (name, scenario) in battery(algorithm, 8, 23) {
            assert_dispatch_equivalent(&name, scenario);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form: the equivalence holds for arbitrary ring sizes and
    /// adversary seeds, not just the fixed battery above.
    #[test]
    fn dispatch_equivalence_holds_across_sizes_and_seeds(
        ring_size in 5usize..12,
        seed in 0u64..1 << 32,
    ) {
        for algorithm in Algorithm::full_catalog(ring_size) {
            let fsync = Scenario::fsync(ring_size, algorithm).with_trace();
            let ssync = Scenario::ssync(ring_size, algorithm, seed).with_trace();
            assert_dispatch_equivalent(&format!("{algorithm}/fsync/n={ring_size}"), fsync);
            assert_dispatch_equivalent(
                &format!("{algorithm}/ssync/n={ring_size}/seed={seed}"),
                ssync,
            );
        }
    }
}
