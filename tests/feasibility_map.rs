//! End-to-end check that the feasibility map (the reproduction of
//! Tables 1–4 and the figures) is fully consistent with the paper on a small
//! configuration. The benchmark harness runs the same experiments on larger
//! rings.

use dynring_analysis::{figures, lower_bounds, markdown_table, tables};

#[test]
fn tables_and_figures_reproduce_the_paper() {
    let mut rows = Vec::new();
    rows.extend(tables::table1(14));
    rows.extend(tables::table2(&[6, 9], 1));
    rows.extend(tables::table3(10));
    rows.extend(tables::table4(&[6], 1));
    rows.extend(figures::all_figures(10));
    rows.push(lower_bounds::theorem4(10));
    rows.extend(lower_bounds::theorem13_15(&[6], 1));

    let rendered = markdown_table("Feasibility map", &rows);
    let violations: Vec<_> = rows.iter().filter(|r| !r.holds).collect();
    assert!(
        violations.is_empty(),
        "rows inconsistent with the paper:\n{:#?}\nfull map:\n{rendered}",
        violations
    );
    // Sanity: the map covers all four tables and the figures.
    assert!(rows.iter().any(|r| r.id.starts_with("T1")));
    assert!(rows.iter().any(|r| r.id.starts_with("T2")));
    assert!(rows.iter().any(|r| r.id.starts_with("T3")));
    assert!(rows.iter().any(|r| r.id.starts_with("T4")));
    assert!(rows.iter().any(|r| r.id.starts_with("F2")));
    assert!(rows.iter().any(|r| r.id.starts_with("LB")));
}
