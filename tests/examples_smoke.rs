//! Smoke tests keeping `examples/` honest: each example's core path is
//! compiled into this test crate (via `#[path]` includes) and exercised with
//! small parameters, so a change that breaks an example fails `cargo test`
//! instead of rotting silently until someone runs `cargo run --example`.

use dynring::prelude::*;

#[path = "../examples/quickstart.rs"]
#[allow(dead_code)]
mod quickstart;

#[path = "../examples/feasibility_map.rs"]
#[allow(dead_code)]
mod feasibility_map;

#[path = "../examples/landmark_termination.rs"]
#[allow(dead_code)]
mod landmark_termination;

#[path = "../examples/ssync_transport_models.rs"]
#[allow(dead_code)]
mod ssync_transport_models;

#[path = "../examples/worst_case_schedule.rs"]
#[allow(dead_code)]
mod worst_case_schedule;

#[path = "../examples/model_check.rs"]
#[allow(dead_code)]
mod model_check;

#[path = "../examples/sweep_service.rs"]
#[allow(dead_code)]
mod sweep_service;

#[test]
fn quickstart_explores_and_terminates() {
    let report = quickstart::run(12).expect("quickstart example must succeed");
    assert!(report.explored());
    assert!(report.all_terminated);
}

#[test]
fn feasibility_map_rows_all_hold() {
    let config = feasibility_map::MapConfig {
        fsync_sizes: vec![6, 9],
        ssync_sizes: vec![6],
        seeds: 1,
        impossibility_n: 12,
        ssync_impossibility_n: 8,
        lower_bound_n: 12,
        figures_n: 12,
        density: dynring_analysis::PlacementDensity::Standard,
    };
    assert!(feasibility_map::run(&config), "feasibility map inconsistent with the paper");
}

#[test]
fn feasibility_map_huge_config_holds_at_smoke_scale() {
    // The `--huge` battery (dense placements, extra seeds) on smoke-scale
    // rings, exactly as the CI job runs it — the configuration cannot rot
    // even when nobody runs the full-size battery.
    let mut config = feasibility_map::MapConfig::small();
    config.density = dynring_analysis::PlacementDensity::Dense;
    assert!(feasibility_map::run(&config), "huge battery inconsistent with the paper");
}

#[test]
fn landmark_termination_always_terminates() {
    for (label, adv_label, report) in landmark_termination::run(10) {
        assert!(report.explored(), "{label} vs {adv_label}");
        assert!(report.all_terminated, "{label} vs {adv_label}");
    }
}

#[test]
fn ssync_transport_models_match_the_theorems() {
    let n = 9;
    // Theorem 9: NS freezes the team forever.
    let ns = ssync_transport_models::run(TransportModel::NoSimultaneity, n);
    assert!(!ns.explored());
    assert_eq!(ns.total_moves, 0);
    // Theorems 16 and 20: PT and ET explore with partial termination.
    for model in [TransportModel::PassiveTransport, TransportModel::EventualTransport] {
        let report = ssync_transport_models::run(model, n);
        assert!(report.explored(), "{model}");
        assert!(report.partially_terminated(), "{model}");
    }
}

#[test]
fn worst_case_schedule_reproduces_figure2() {
    let outcome = worst_case_schedule::run(10);
    assert!(outcome.matches(), "Figure 2 outcome diverged from 3n − 6");
}

#[test]
fn model_check_rows_hold_at_smoke_scale() {
    // n ≤ 5 keeps the exhaustive search in test-suite territory; the full
    // n ≤ 8 matrix runs in tests/model_check.rs and the CI smoke step.
    assert!(model_check::run(5), "a model-checked Table 1/3 row failed to hold");
}

#[test]
fn sweep_service_example_runs_and_resumes_byte_identically() {
    let job = sweep_service::battery(6);
    let supervisor = dynring::service::Supervisor::new().threads(2).chunk(2);
    let journal = std::env::temp_dir()
        .join(format!("dynring-smoke-sweep-service-{}.jsonl", std::process::id()));
    let report = std::env::temp_dir()
        .join(format!("dynring-smoke-sweep-service-{}.md", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let outcome = sweep_service::run(&supervisor, &job, &journal, Some(&report))
        .expect("sweep service example must succeed");
    assert_eq!(outcome.completed(), 6);
    let first = std::fs::read_to_string(&report).unwrap();
    // Re-running the identical command resumes from the journal and writes
    // the byte-identical report.
    let resumed = sweep_service::run(&supervisor, &job, &journal, Some(&report))
        .expect("resume must succeed");
    assert_eq!(resumed.resumed, 6);
    assert_eq!(std::fs::read_to_string(&report).unwrap(), first);
    std::fs::remove_file(&journal).unwrap();
    std::fs::remove_file(&report).unwrap();
}
