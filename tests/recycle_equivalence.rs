//! Recycle ≡ fresh-build equivalence.
//!
//! The run-recycling fast path (`ScenarioRunner` + `Simulation::recycle`)
//! re-initialises one simulation in place instead of rebuilding it per run.
//! Nothing observable may depend on which lifecycle executed a scenario:
//!
//! * the **golden digests** pinned from the pre-refactor engine
//!   (`tests/determinism.rs`) must come out of the recycled path unchanged —
//!   one shared runner replays all nine scenarios back to back, so every
//!   digest is computed on a simulation recycled across shape changes;
//! * a **battery sweep** drives the full algorithm catalogue ×
//!   FSYNC/SSYNC × the adversary suite × mixed ring sizes/dispatches through
//!   ONE recycled runner, comparing every `RunReport` (and trace digest,
//!   where traces are on) against a fresh `Scenario` build;
//! * a **proptest** replays random cell sequences, so arbitrary recycle
//!   orders (shape growth, shrinkage, policy churn, trace toggling) keep the
//!   equivalence.

mod common;

use common::{fnv, golden_scenarios};
use dynring_analysis::scenario::{AdversaryKind, DispatchKind, Scenario, ScenarioRunner};
use dynring_analysis::sweeps::adversary_suite;
use dynring_core::Algorithm;
use dynring_engine::sim::{RunReport, StopCondition};
use dynring_engine::trace::Trace;
use dynring_model::TerminationKind;
use proptest::prelude::*;

fn execution_digest(report: &RunReport, trace: &Trace) -> u64 {
    fnv(&format!("{report:?}|{trace:?}"))
}

/// Runs the scenario on the fresh-build path, returning the report and the
/// trace digest (if the scenario records one).
fn fresh_run(scenario: &Scenario) -> (RunReport, Option<u64>) {
    let mut sim = scenario.build();
    let report = sim.run(scenario.max_rounds, scenario.stop);
    let digest = sim.trace().map(|trace| execution_digest(&report, trace));
    (report, digest)
}

/// Runs the scenario on the recycled runner, returning the same pair.
fn recycled_run(runner: &mut ScenarioRunner, scenario: &Scenario) -> (RunReport, Option<u64>) {
    let report = runner.run(scenario);
    let digest = runner.trace().map(|trace| execution_digest(&report, trace));
    (report, digest)
}

#[test]
fn golden_digests_come_out_of_the_recycled_lifecycle_unchanged() {
    // One runner for all nine scenarios: every digest after the first is
    // computed on a simulation recycled across algorithm, ring-size,
    // scheduler and adversary changes.
    let mut runner = ScenarioRunner::new();
    for (name, scenario, expected) in golden_scenarios() {
        let (report, digest) = recycled_run(&mut runner, &scenario);
        let digest = digest.expect("golden scenarios record traces");
        assert_eq!(
            digest, expected,
            "{name}: recycled execution drifted from the pinned pre-refactor digest \
             (got {digest:#018x}, pinned {expected:#018x}; rounds={})",
            report.rounds
        );
    }
    // Replaying the whole battery on the same (now well-worn) runner must
    // reproduce every digest again.
    for (name, scenario, expected) in golden_scenarios() {
        let (_, digest) = recycled_run(&mut runner, &scenario);
        assert_eq!(digest, Some(expected), "{name}: second recycled replay diverged");
    }
}

/// One battery cell: the catalogue algorithm under either synchrony base,
/// one adversary, one ring size, alternating dispatch and trace recording.
fn battery_cell(
    algorithm: Algorithm,
    ssync: bool,
    adversary: AdversaryKind,
    n: usize,
    index: usize,
) -> Scenario {
    let base = if ssync {
        Scenario::ssync(n, algorithm, 31 * index as u64 + 7)
    } else {
        Scenario::fsync(n, algorithm)
    };
    let stop = match algorithm.termination_kind() {
        TerminationKind::Explicit => StopCondition::AllTerminated,
        TerminationKind::Partial => StopCondition::ExploredAndPartialTermination,
        TerminationKind::Unconscious => StopCondition::Explored,
    };
    let budget = base.max_rounds.min(1500);
    let mut scenario = base
        .with_adversary(adversary)
        .with_stop(stop)
        .with_max_rounds(budget)
        .with_dispatch(if index % 4 == 3 { DispatchKind::Dyn } else { DispatchKind::Enum });
    if index.is_multiple_of(3) {
        scenario = scenario.with_trace();
    }
    scenario
}

#[test]
fn the_full_catalogue_battery_is_lifecycle_invariant() {
    // Every catalogue algorithm × FSYNC/SSYNC × the adversary suite × mixed
    // ring sizes through ONE recycled runner: shape, policy, dispatch and
    // trace churn on every consecutive pair of cells.
    let mut runner = ScenarioRunner::new();
    let mut cells = 0usize;
    for (a, &n) in [5usize, 8, 11].iter().enumerate() {
        for (b, algorithm) in Algorithm::full_catalog(n).into_iter().enumerate() {
            for ssync in [false, true] {
                for (c, adversary) in adversary_suite(n, (a + b) as u64).into_iter().enumerate() {
                    cells += 1;
                    let scenario = battery_cell(algorithm, ssync, adversary, n, a + b + c);
                    let fresh = fresh_run(&scenario);
                    let recycled = recycled_run(&mut runner, &scenario);
                    assert_eq!(
                        fresh,
                        recycled,
                        "lifecycle divergence: {} (ssync={ssync}, trace={})",
                        scenario.label(),
                        scenario.record_trace,
                    );
                }
            }
        }
    }
    assert!(cells >= 400, "the battery should cover the full catalogue ({cells} cells)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary cell sequences replay identically through one recycled
    /// runner, whatever the order of shape growth/shrinkage, scheduler and
    /// adversary churn, dispatch switches and trace toggling (the per-cell
    /// picks are derived from the seed through an LCG — the vendored
    /// proptest stub samples plain integer ranges).
    #[test]
    fn random_cell_sequences_are_lifecycle_invariant(
        seed in 0u64..1_000_000_000,
        length in 1usize..6,
        ssync_bit in 0usize..2,
    ) {
        let mut runner = ScenarioRunner::new();
        let mut state = seed;
        let mut draw = |span: usize| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as usize) % span
        };
        for _ in 0..length {
            let n = 5 + draw(7);
            let algorithm = Algorithm::full_catalog(n)[draw(12)];
            let adversary = adversary_suite(n, draw(64) as u64)[draw(6)].clone();
            let scenario = battery_cell(algorithm, ssync_bit == 1, adversary, n, draw(12));
            let fresh = fresh_run(&scenario);
            let recycled = recycled_run(&mut runner, &scenario);
            prop_assert_eq!(fresh, recycled, "lifecycle divergence: {}", scenario.label());
        }
    }

    /// Rerunning the *same* cell on a warm runner (the benchmark's
    /// zero-allocation regime: cached spec, policy reset only) replays the
    /// fresh execution every time.
    #[test]
    fn same_cell_reruns_are_lifecycle_invariant(
        n in 5usize..12,
        algorithm_index in 0usize..12,
        adversary_index in 0usize..6,
        reruns in 2usize..5,
    ) {
        let algorithm = Algorithm::full_catalog(n)[algorithm_index];
        let adversary = adversary_suite(n, 3)[adversary_index].clone();
        let scenario = battery_cell(algorithm, false, adversary, n, 0);
        let fresh = fresh_run(&scenario);
        let mut runner = ScenarioRunner::new();
        for rerun in 0..reruns {
            let recycled = recycled_run(&mut runner, &scenario);
            prop_assert_eq!(&fresh, &recycled, "rerun {} diverged: {}", rerun, scenario.label());
        }
    }
}
