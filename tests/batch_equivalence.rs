//! Property-based equivalence of the parallel sweep executor and the
//! sequential reference path.
//!
//! The `BatchRunner` fans independent scenario runs across threads and merges
//! the results in input order, so a sweep (and everything built on sweeps:
//! the tables, the feasibility map) must be **bit-identical** to the
//! sequential execution for every ring size, seed count and thread count.

use dynring_analysis::batch::BatchRunner;
use dynring_analysis::scenario::Scenario;
use dynring_analysis::sweeps::{self, adversary_suite};
use dynring_analysis::{figures, lower_bounds, markdown_table, tables};
use dynring_core::Algorithm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An FSYNC sweep folded from parallel reports equals the sequential one,
    /// point by point, for arbitrary small ring sizes and seed counts.
    #[test]
    fn fsync_sweep_is_thread_count_invariant(
        n in 5usize..10,
        extra in 0usize..3,
        seeds in 1u64..3,
        threads in 2usize..6,
    ) {
        let sizes = [n, n + extra + 1];
        let make = |n: usize| Algorithm::KnownBound { upper_bound: n };
        let sequential =
            sweeps::sweep_fsync_with(&BatchRunner::sequential(), make, &sizes, seeds);
        let parallel =
            sweeps::sweep_fsync_with(&BatchRunner::new(threads), make, &sizes, seeds);
        prop_assert_eq!(&sequential.points, &parallel.points);
        prop_assert_eq!(sequential.all_explored, parallel.all_explored);
        prop_assert_eq!(
            sequential.all_terminated_as_promised,
            parallel.all_terminated_as_promised
        );
    }

    /// Raw report batches come back in input order whatever the thread count.
    #[test]
    fn report_batches_are_input_ordered(
        n in 5usize..9,
        seed in 0u64..16,
        threads in 2usize..8,
    ) {
        let scenarios: Vec<Scenario> = adversary_suite(n, seed)
            .into_iter()
            .map(|adversary| {
                Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
                    .with_adversary(adversary)
            })
            .collect();
        let sequential = BatchRunner::sequential().run_reports(&scenarios);
        let parallel = BatchRunner::new(threads).run_reports(&scenarios);
        prop_assert_eq!(sequential, parallel);
    }
}

/// An SSYNC sweep (stateful schedulers, sticky random adversaries) is also
/// invariant — every scenario owns its policies, so no state leaks between
/// parallel runs.
#[test]
fn ssync_sweep_is_thread_count_invariant() {
    let make = |n: usize| Algorithm::PtBoundChirality { upper_bound: n };
    let sequential = sweeps::sweep_ssync_with(&BatchRunner::sequential(), make, &[6], 1);
    let parallel = sweeps::sweep_ssync_with(&BatchRunner::new(4), make, &[6], 1);
    assert_eq!(sequential.points, parallel.points);
    assert_eq!(sequential.all_explored, parallel.all_explored);
    assert_eq!(
        sequential.all_terminated_as_promised,
        parallel.all_terminated_as_promised
    );
}

/// The rendered impossibility tables — the feasibility map's markdown output —
/// are byte-identical between the sequential and parallel paths.
#[test]
fn rendered_tables_are_byte_identical_across_runners() {
    let sequential_runner = BatchRunner::sequential();
    let parallel_runner = BatchRunner::new(4);
    let render = |runner: &BatchRunner| {
        let mut out = String::new();
        out.push_str(&markdown_table("Table 1", &tables::table1_with(runner, 12)));
        out.push_str(&markdown_table("Table 3", &tables::table3_with(runner, 8)));
        out
    };
    assert_eq!(render(&sequential_runner), render(&parallel_runner));
}

/// The figure battery fans seven independent experiments across threads;
/// merging in input order must make the rows byte-identical to the
/// sequential reference whatever the thread count (ROADMAP "Scale — batch
/// the figure/lower-bound experiments").
#[test]
fn figures_are_thread_count_invariant() {
    let sequential = figures::all_figures_with(&BatchRunner::sequential(), 8);
    for threads in [2, 4, 7] {
        let parallel = figures::all_figures_with(&BatchRunner::new(threads), 8);
        assert_eq!(sequential, parallel, "{threads} threads");
    }
}

/// The lower-bound sweeps route their batteries through the runner like the
/// tables; the folded rows must match the sequential reference.
#[test]
fn lower_bounds_are_thread_count_invariant() {
    let sequential = lower_bounds::theorem13_15_with(&BatchRunner::sequential(), &[6], 1);
    let parallel = lower_bounds::theorem13_15_with(&BatchRunner::new(4), &[6], 1);
    assert_eq!(sequential, parallel);
}
