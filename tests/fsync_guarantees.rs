//! Cross-crate integration tests: the FSYNC guarantees of Section 3 hold for
//! the full stack (algorithms + engine + adversaries), including under
//! randomised adversaries (property-based).

use dynring::prelude::*;
use dynring_analysis::figures;
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use proptest::prelude::*;

/// Theorem 3 on the exact worst-case schedule of Figure 2, across sizes.
#[test]
fn figure2_schedule_costs_exactly_3n_minus_6() {
    for n in [6, 8, 10, 14, 20] {
        let outcome = figures::figure2(n);
        assert_eq!(outcome.explored_at, Some(3 * n as u64 - 6), "n = {n}");
    }
}

/// Theorem 3: exploration + explicit termination within 3N−6 rounds on a
/// static ring, for every pair of distinct starting nodes.
#[test]
fn known_bound_terminates_from_every_start_pair() {
    let n = 9;
    for a in 0..n {
        for b in 0..n {
            let report = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
                .with_starts(vec![a, b])
                .run();
            assert!(report.explored(), "starts ({a},{b})");
            assert!(report.all_terminated, "starts ({a},{b})");
            assert!(
                report.last_termination().unwrap() <= 3 * n as u64 - 6 + 1,
                "starts ({a},{b}): {:?}",
                report.termination_rounds
            );
        }
    }
}

/// Theorem 6: LandmarkWithChirality explores and terminates in O(n) even when
/// an edge is missing forever, wherever the landmark is relative to the
/// agents.
#[test]
fn landmark_chirality_terminates_for_every_blocked_edge() {
    let n = 10;
    for blocked in 0..n {
        let report = Scenario::fsync(n, Algorithm::LandmarkChirality)
            .with_starts(vec![2, 7])
            .with_adversary(AdversaryKind::BlockForever { edge: blocked })
            .with_max_rounds(40 * n as u64)
            .run();
        assert!(report.explored(), "blocked edge {blocked}");
        assert!(report.all_terminated, "blocked edge {blocked}");
        assert!(
            report.last_termination().unwrap() <= 30 * n as u64,
            "blocked edge {blocked}: {:?}",
            report.termination_rounds
        );
    }
}

/// Observation 1 / Corollary 1: a single agent never explores against its
/// dedicated blocker, no matter its patience.
#[test]
fn single_agent_cannot_explore() {
    for patience in [0, 1, 5] {
        let report = Scenario::fsync(8, Algorithm::LoneWalker { patience })
            .with_adversary(AdversaryKind::BlockAgent { agent: 0 })
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(500)
            .run();
        assert!(!report.explored());
        assert_eq!(report.visited_count, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3 under randomised sticky dynamics, arbitrary starts and
    /// arbitrary (possibly disagreeing) orientations.
    #[test]
    fn known_bound_explores_under_random_dynamics(
        n in 5usize..14,
        start_a in 0usize..14,
        start_b in 0usize..14,
        flip_a in any::<bool>(),
        flip_b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let orient = |flip: bool| if flip { Handedness::LeftIsCw } else { Handedness::LeftIsCcw };
        let report = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
            .with_starts(vec![start_a % n, start_b % n])
            .with_orientations(vec![orient(flip_a), orient(flip_b)])
            .with_adversary(AdversaryKind::Sticky {
                min_hold: 1,
                max_hold: n as u64,
                present: 0.2,
                seed,
            })
            .run();
        prop_assert!(report.explored());
        prop_assert!(report.all_terminated);
        prop_assert!(report.last_termination().unwrap() <= 3 * n as u64 - 6 + 1);
    }

    /// Theorem 5: Unconscious explores within O(n) rounds under random
    /// dynamics and never terminates.
    #[test]
    fn unconscious_explores_in_linear_time(
        n in 4usize..16,
        start_a in 0usize..16,
        start_b in 0usize..16,
        seed in any::<u64>(),
    ) {
        let report = Scenario::fsync(n, Algorithm::Unconscious)
            .with_starts(vec![start_a % n, start_b % n])
            .with_adversary(AdversaryKind::Sticky {
                min_hold: 1,
                max_hold: (n as u64).max(2),
                present: 0.25,
                seed,
            })
            .with_stop(StopCondition::Explored)
            .with_max_rounds(64 * n as u64)
            .run();
        prop_assert!(report.explored(), "visited {}/{}", report.visited_count, n);
        prop_assert!(!report.partially_terminated());
        prop_assert!(report.explored_at.unwrap() <= 40 * n as u64);
    }

    /// Theorem 8: LandmarkNoChirality explores with explicit termination of
    /// both agents under adversarial single-edge blocking.
    #[test]
    fn landmark_no_chirality_terminates(
        n in 5usize..10,
        start_a in 0usize..10,
        start_b in 0usize..10,
        blocked in 0usize..10,
        flip in any::<bool>(),
    ) {
        let orientations = if flip {
            vec![Handedness::LeftIsCw, Handedness::LeftIsCcw]
        } else {
            vec![Handedness::LeftIsCcw, Handedness::LeftIsCcw]
        };
        let budget = 2 * dynring_core::fsync::LandmarkNoChirality::termination_bound(n as u64)
            + 64 * n as u64
            + 1024;
        let report = Scenario::fsync(n, Algorithm::LandmarkNoChirality)
            .with_starts(vec![start_a % n, start_b % n])
            .with_orientations(orientations)
            .with_adversary(AdversaryKind::BlockForever { edge: blocked % n })
            .with_max_rounds(budget)
            .run();
        prop_assert!(report.explored());
        prop_assert!(report.all_terminated, "terminations {:?}", report.termination_rounds);
    }
}

/// The FSYNC guarantees also hold from the dense rotated placement grid of
/// the `--huge` battery (adjacent/spread placements rotated by 1, ⌈n/4⌉ and
/// ⌈n/2⌉ nodes), under a permanently blocked edge.
#[test]
fn fsync_guarantees_hold_on_dense_rotated_placements() {
    use dynring_analysis::sweeps::{self, PlacementDensity};
    let n = 8;
    for algorithm in [
        Algorithm::KnownBound { upper_bound: n },
        Algorithm::Unconscious,
        Algorithm::LandmarkChirality,
        Algorithm::LandmarkNoChirality,
        Algorithm::StartFromLandmarkNoChirality,
    ] {
        let agents = algorithm.required_agents();
        for placement in sweeps::start_placements_with(n, agents, PlacementDensity::Dense) {
            let report = Scenario::fsync(n, algorithm)
                .with_starts(placement.clone())
                .with_adversary(AdversaryKind::BlockForever { edge: n / 2 })
                .with_max_rounds(sweeps::round_budget(&algorithm, n))
                .run();
            assert!(report.explored(), "{algorithm} from {placement:?}");
            match algorithm.termination_kind() {
                TerminationKind::Explicit => assert!(
                    report.all_terminated,
                    "{algorithm} from {placement:?}: {:?}",
                    report.termination_rounds
                ),
                _ => assert!(!report.partially_terminated(), "{algorithm} from {placement:?}"),
            }
        }
    }
}
