//! Cross-crate integration tests for the semi-synchronous results of
//! Section 4 (PT and ET transport models).

use dynring::prelude::*;
use dynring_analysis::scenario::{AdversaryKind, Scenario, SchedulerKind};
use proptest::prelude::*;

/// Theorem 9: in the NS model the first-mover adversary freezes any protocol.
#[test]
fn ns_model_freezes_every_protocol() {
    let n = 9;
    for algorithm in [
        Algorithm::PtBoundChirality { upper_bound: n },
        Algorithm::PtBoundNoChirality { upper_bound: n },
        Algorithm::EtUnconscious,
        Algorithm::LandmarkChirality,
    ] {
        let mut scenario = Scenario::fsync(n, algorithm);
        scenario.synchrony = SynchronyModel::Ssync(TransportModel::NoSimultaneity);
        let report = scenario
            .with_scheduler(SchedulerKind::FirstMoverOnly)
            .with_adversary(AdversaryKind::BlockFirstMover)
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(60 * n as u64)
            .run();
        assert_eq!(report.total_moves, 0, "{algorithm}");
        assert!(!report.explored(), "{algorithm}");
    }
}

/// Theorem 12 under a permanently missing edge: exploration, one agent
/// terminates, the other waits on the missing edge forever.
#[test]
fn pt_bound_chirality_under_permanent_block() {
    let n = 8;
    for blocked in 0..n {
        let report = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 3)
            .with_adversary(AdversaryKind::BlockForever { edge: blocked })
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(200 * n as u64)
            .run();
        assert!(report.explored(), "blocked {blocked}");
        assert!(report.partially_terminated(), "blocked {blocked}");
        assert!(!report.all_terminated, "blocked {blocked}: Theorem 11 forbids full termination here");
    }
}

/// Theorem 20: the ET algorithm with exact knowledge explores and partially
/// terminates under an ET-fair scheduler, for every permanently blocked edge.
#[test]
fn et_exact_size_terminates_partially() {
    let n = 7;
    for blocked in 0..n {
        let report = Scenario::ssync(n, Algorithm::EtBoundNoChirality { ring_size: n }, 5)
            .with_adversary(AdversaryKind::BlockForever { edge: blocked })
            .with_stop(StopCondition::ExploredAndPartialTermination)
            .with_max_rounds(500 * (n as u64) * (n as u64))
            .run();
        assert!(report.explored(), "blocked {blocked}");
        assert!(report.partially_terminated(), "blocked {blocked}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 12/14/16/17: the PT algorithms explore with partial
    /// termination and their move count stays quadratically bounded under
    /// random sticky dynamics and adversarial sleeping.
    #[test]
    fn pt_algorithms_explore_with_partial_termination(
        n in 5usize..10,
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let algorithm = match which {
            0 => Algorithm::PtBoundChirality { upper_bound: n },
            1 => Algorithm::PtLandmarkChirality,
            2 => Algorithm::PtBoundNoChirality { upper_bound: n },
            _ => Algorithm::PtLandmarkNoChirality,
        };
        let report = Scenario::ssync(n, algorithm, seed).run();
        prop_assert!(report.explored(), "{algorithm}: visited {}/{}", report.visited_count, n);
        prop_assert!(report.partially_terminated(), "{algorithm}");
        let bound = 20 * (n as u64) * (n as u64) + 8 * n as u64 + 64;
        prop_assert!(report.total_moves <= bound, "{algorithm}: {} moves > {bound}", report.total_moves);
    }

    /// Theorem 18: ET unconscious exploration completes under random sticky
    /// dynamics with an ET-fair scheduler.
    #[test]
    fn et_unconscious_explores(n in 4usize..12, seed in any::<u64>()) {
        let report = Scenario::ssync(n, Algorithm::EtUnconscious, seed)
            .with_stop(StopCondition::Explored)
            .run();
        prop_assert!(report.explored(), "visited {}/{}", report.visited_count, n);
        prop_assert!(!report.partially_terminated());
    }
}

/// The SSYNC guarantees also hold from the dense rotated placement grid of
/// the `--huge` battery, under the default sticky random dynamics.
#[test]
fn ssync_guarantees_hold_on_dense_rotated_placements() {
    use dynring_analysis::sweeps::{self, PlacementDensity};
    let n = 7;
    for algorithm in [
        Algorithm::PtBoundChirality { upper_bound: n },
        Algorithm::PtLandmarkChirality,
        Algorithm::PtBoundNoChirality { upper_bound: n },
        Algorithm::PtLandmarkNoChirality,
        Algorithm::EtBoundNoChirality { ring_size: n },
        Algorithm::EtUnconscious,
    ] {
        let agents = algorithm.required_agents();
        for placement in sweeps::start_placements_with(n, agents, PlacementDensity::Dense) {
            let mut scenario = Scenario::ssync(n, algorithm, 11).with_starts(placement.clone());
            if algorithm.termination_kind() == TerminationKind::Unconscious {
                scenario = scenario.with_stop(StopCondition::Explored);
            }
            let report = scenario.run();
            assert!(
                report.explored(),
                "{algorithm} from {placement:?}: visited {}/{n}",
                report.visited_count
            );
            if algorithm.termination_kind() != TerminationKind::Unconscious {
                assert!(report.partially_terminated(), "{algorithm} from {placement:?}");
            }
        }
    }
}
