//! The error-path matrix: every `EngineError` variant, provoked through
//! every public construction path that can raise it, with its `Display`
//! message and `source()` chain pinned.
//!
//! The happy paths are covered everywhere else in the suite; this file
//! keeps the *failure* surface honest — a misconfigured scenario must fail
//! loudly, early, and with a message that names the offending part, because
//! the service layer journals these messages verbatim into failure reports.

use dynring::engine::error::EngineError;
use dynring::engine::sim::{AgentSpec, RunSpec};
use dynring::prelude::*;
use dynring_graph::GraphError;

fn walker(n: usize) -> Box<dyn Protocol> {
    Box::new(KnownBound::new(n))
}

fn spec_agent(n: usize, start: usize) -> AgentSpec {
    AgentSpec::new(NodeId::new(start), Handedness::LeftIsCcw, walker(n))
}

#[test]
fn builder_with_no_agents_fails() {
    let err = Simulation::builder(RingTopology::new(8).unwrap())
        .activation(Box::new(FullActivation))
        .edges(Box::new(NoRemoval))
        .build()
        .unwrap_err();
    assert_eq!(err, EngineError::NoAgents);
    assert_eq!(err.to_string(), "a scenario needs at least one agent");
}

#[test]
fn run_spec_with_no_agents_fails() {
    let err = RunSpec::new(
        RingTopology::new(8).unwrap(),
        SynchronyModel::Fsync,
        vec![],
        false,
    )
    .unwrap_err();
    assert_eq!(err, EngineError::NoAgents);
}

#[test]
fn builder_start_out_of_range_names_agent_node_and_ring() {
    let err = Simulation::builder(RingTopology::new(6).unwrap())
        .agent(NodeId::new(0), Handedness::LeftIsCcw, walker(6))
        .agent(NodeId::new(6), Handedness::LeftIsCcw, walker(6))
        .activation(Box::new(FullActivation))
        .edges(Box::new(NoRemoval))
        .build()
        .unwrap_err();
    match err {
        EngineError::StartOutOfRange { agent, node, ring_size } => {
            // The *second* agent (index 1) is the offender, and the message
            // carries all three coordinates.
            assert_eq!(agent.index(), 1);
            assert_eq!(node.index(), 6);
            assert_eq!(ring_size, 6);
        }
        other => panic!("expected StartOutOfRange, got {other:?}"),
    }
    assert!(err.to_string().contains("outside a ring of size 6"), "{err}");
}

#[test]
fn run_spec_start_out_of_range_matches_the_builder() {
    let builder_err = Simulation::builder(RingTopology::new(5).unwrap())
        .agent(NodeId::new(9), Handedness::LeftIsCcw, walker(5))
        .activation(Box::new(FullActivation))
        .edges(Box::new(NoRemoval))
        .build()
        .unwrap_err();
    let spec_err = RunSpec::new(
        RingTopology::new(5).unwrap(),
        SynchronyModel::Fsync,
        vec![spec_agent(5, 9)],
        false,
    )
    .unwrap_err();
    // Both construction paths validate identically (the recycled and fresh
    // lifecycles share one contract, errors included).
    assert_eq!(builder_err, spec_err);
    assert!(matches!(
        spec_err,
        EngineError::StartOutOfRange { node, ring_size: 5, .. } if node.index() == 9
    ));
}

#[test]
fn missing_policies_are_reported_by_name() {
    let ring = RingTopology::new(6).unwrap();
    let err = Simulation::builder(ring.clone())
        .agent(NodeId::new(0), Handedness::LeftIsCcw, walker(6))
        .edges(Box::new(NoRemoval))
        .build()
        .unwrap_err();
    assert_eq!(err, EngineError::MissingPolicy { which: "activation" });
    assert!(err.to_string().contains("activation"), "{err}");

    let err = Simulation::builder(ring)
        .agent(NodeId::new(0), Handedness::LeftIsCcw, walker(6))
        .activation(Box::new(FullActivation))
        .build()
        .unwrap_err();
    assert_eq!(err, EngineError::MissingPolicy { which: "edges" });
    assert!(err.to_string().contains("edges"), "{err}");
}

#[test]
fn adversary_edge_out_of_range_is_rejected_but_valid_choices_pass() {
    let sim = Simulation::builder(RingTopology::new(6).unwrap())
        .agent(NodeId::new(0), Handedness::LeftIsCcw, walker(6))
        .activation(Box::new(FullActivation))
        .edges(Box::new(NoRemoval))
        .build()
        .unwrap();
    let err = sim.validate_edge_choice(Some(EdgeId::new(6))).unwrap_err();
    assert_eq!(err, EngineError::AdversaryEdgeOutOfRange { edge: EdgeId::new(6), ring_size: 6 });
    assert!(err.to_string().contains("outside a ring of size 6"), "{err}");
    // Every real edge, and "remove nothing", validate.
    for edge in 0..6 {
        sim.validate_edge_choice(Some(EdgeId::new(edge))).unwrap();
    }
    sim.validate_edge_choice(None).unwrap();
}

#[test]
fn graph_errors_are_wrapped_with_a_source_chain() {
    let graph_err = RingTopology::new(2).unwrap_err();
    let err = EngineError::from(graph_err.clone());
    assert_eq!(err, EngineError::Graph(graph_err));
    // The Display mentions the layer, and source() exposes the substrate
    // error for callers that walk the chain.
    assert!(err.to_string().contains("substrate error"), "{err}");
    let source = std::error::Error::source(&err).expect("wrapped error keeps its source");
    assert!(matches!(
        source.downcast_ref::<GraphError>(),
        Some(GraphError::RingTooSmall { .. })
    ));
}

#[test]
fn every_variant_has_a_distinct_and_nonempty_display() {
    let errors = [
        EngineError::NoAgents,
        EngineError::StartOutOfRange {
            agent: dynring_graph::AgentId::new(0),
            node: NodeId::new(9),
            ring_size: 5,
        },
        EngineError::AdversaryEdgeOutOfRange { edge: EdgeId::new(7), ring_size: 5 },
        EngineError::MissingPolicy { which: "activation" },
        EngineError::MissingPolicy { which: "edges" },
        EngineError::Graph(GraphError::RingTooSmall { requested: 2 }),
    ];
    let messages: std::collections::BTreeSet<String> =
        errors.iter().map(ToString::to_string).collect();
    assert_eq!(messages.len(), errors.len(), "{messages:?}");
    assert!(messages.iter().all(|m| !m.is_empty()));
}
