//! Columnar trace ≡ eager row-of-structs equivalence.
//!
//! The trace layer stores executions as per-round columns with delta-encoded
//! per-agent entries and lazily rendered state labels; `RoundRecord` /
//! `AgentRoundRecord` survive only as materialized views. Nothing observable
//! may depend on the representation:
//!
//! * the **golden digests** pinned from the pre-refactor engine (shared with
//!   `tests/determinism.rs`) must come out of the columnar view unchanged,
//!   and each golden trace must render byte-identical to an eager
//!   `Trace { rounds: [...] }` built from its own materialized records;
//! * a **battery** drives the full 12-entry catalogue × FSYNC/SSYNC × the
//!   adversary suite with tracing on, checking view coherence on every cell:
//!   eager-form rendering, `round_at`/`round`/`agent` index lookups against
//!   the iterator, the invariant checker, and the report-derived round
//!   statistics;
//! * **proptests** replay random trace-on cell sequences and same-cell
//!   reruns through one recycled runner, so arbitrary recycle orders keep
//!   the materialized records identical to fresh builds.

mod common;

use common::{fnv, golden_scenarios};
use dynring_analysis::scenario::{AdversaryKind, Scenario, ScenarioRunner};
use dynring_analysis::sweeps::adversary_suite;
use dynring_core::Algorithm;
use dynring_engine::sim::{RunReport, StopCondition};
use dynring_engine::trace::{RoundRecord, Trace};
use dynring_model::TerminationKind;
use proptest::prelude::*;

/// Materializes every round and checks the columnar view against it:
/// the Debug rendering must equal the pre-refactor eager form (a struct
/// holding one plain `rounds` vector), and the random-access paths —
/// `round_at` by index, `round` by round number, `agent` by id — must agree
/// with the iterator on every record.
fn assert_view_coherent(trace: &Trace, label: &str) -> Vec<RoundRecord> {
    let rounds: Vec<RoundRecord> = trace.rounds().collect();
    assert_eq!(trace.len(), rounds.len(), "{label}: len() vs rounds()");
    assert_eq!(trace.is_empty(), rounds.is_empty(), "{label}: is_empty()");
    assert_eq!(
        format!("{trace:?}"),
        format!("Trace {{ rounds: {rounds:?} }}"),
        "{label}: Debug drifted from the eager row-of-structs form"
    );
    for (index, record) in rounds.iter().enumerate() {
        assert_eq!(
            trace.round_at(index).as_ref(),
            Some(record),
            "{label}: round_at({index})"
        );
        assert_eq!(
            trace.round(record.round).as_ref(),
            Some(record),
            "{label}: round({}) lookup",
            record.round
        );
        for agent in &record.agents {
            assert_eq!(
                record.agent(agent.id),
                Some(agent),
                "{label}: agent({:?}) lookup in round {}",
                agent.id,
                record.round
            );
        }
    }
    assert!(trace.round(0).is_none(), "{label}: rounds are 1-based");
    rounds
}

fn execution_digest(report: &RunReport, trace: &Trace) -> u64 {
    fnv(&format!("{report:?}|{trace:?}"))
}

/// Fresh solo run of a trace-on scenario: report plus materialized rounds
/// plus the execution digest (the coherence checks run on every call).
fn fresh_trace_run(scenario: &Scenario) -> (RunReport, Vec<RoundRecord>, u64) {
    let mut sim = scenario.build();
    let report = sim.run(scenario.max_rounds, scenario.stop);
    let trace = sim.trace().expect("trace-on scenario records a trace");
    let rounds = assert_view_coherent(trace, &scenario.label());
    let digest = execution_digest(&report, trace);
    (report, rounds, digest)
}

#[test]
fn golden_traces_materialize_byte_identical_to_the_pre_refactor_structs() {
    for (name, scenario, expected) in golden_scenarios() {
        let (_, _, digest) = fresh_trace_run(&scenario);
        assert_eq!(
            digest, expected,
            "{name}: columnar view drifted from the pre-refactor eager structs \
             (got {digest:#018x}, pinned {expected:#018x})"
        );
    }
}

/// One battery cell: catalogue algorithm under either synchrony base, one
/// adversary, tracing always on, budget capped to keep the battery fast.
fn trace_cell(algorithm: Algorithm, ssync: bool, adversary: AdversaryKind, n: usize, seed: u64) -> Scenario {
    let base = if ssync {
        Scenario::ssync(n, algorithm, seed)
    } else {
        Scenario::fsync(n, algorithm)
    };
    let stop = match algorithm.termination_kind() {
        TerminationKind::Explicit => StopCondition::AllTerminated,
        TerminationKind::Partial => StopCondition::ExploredAndPartialTermination,
        TerminationKind::Unconscious => StopCondition::Explored,
    };
    let budget = base.max_rounds.min(1200);
    base.with_adversary(adversary).with_stop(stop).with_max_rounds(budget).with_trace()
}

#[test]
fn the_full_catalogue_battery_materializes_coherently() {
    let n = 8;
    let mut cells = 0usize;
    for (index, algorithm) in Algorithm::full_catalog(n).into_iter().enumerate() {
        for ssync in [false, true] {
            for adversary in adversary_suite(n, index as u64) {
                cells += 1;
                let scenario = trace_cell(algorithm, ssync, adversary, n, 13 + index as u64);
                let (report, rounds, _) = fresh_trace_run(&scenario);
                // Round statistics derived from the columns agree with the
                // engine's own report.
                let mut sim = scenario.build();
                let rerun = sim.run(scenario.max_rounds, scenario.stop);
                assert_eq!(rerun, report, "{}: rerun diverged", scenario.label());
                let trace = sim.trace().expect("trace-on cell");
                trace
                    .check_invariants(n)
                    .unwrap_or_else(|violation| panic!("{}: {violation}", scenario.label()));
                assert_eq!(
                    trace.exploration_round(n),
                    report.explored_at,
                    "{}: exploration round",
                    scenario.label()
                );
                // Under SSYNC a sleeping agent re-reports its stale `Moved`
                // prior each round, so the per-round traversal count only
                // equals the report's move total when every agent
                // re-activates every round (FSYNC).
                if !ssync {
                    assert_eq!(
                        trace.total_traversals() as u64,
                        report.total_moves,
                        "{}: total traversals",
                        scenario.label()
                    );
                }
                assert_eq!(trace.rounds().collect::<Vec<_>>(), rounds, "{}", scenario.label());
            }
        }
    }
    assert!(cells >= 144, "the battery should cover the full catalogue ({cells} cells)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random trace-on cell sequences through ONE recycled runner: whatever
    /// the order of shape growth/shrinkage and policy churn, the recycled
    /// trace materializes records identical to a fresh build's, and the
    /// execution digests match.
    #[test]
    fn random_cell_sequences_materialize_identically(
        seed in 0u64..1_000_000_000,
        length in 1usize..6,
        ssync_bit in 0usize..2,
    ) {
        let mut runner = ScenarioRunner::new();
        let mut state = seed;
        let mut draw = |span: usize| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as usize) % span
        };
        for _ in 0..length {
            let n = 5 + draw(7);
            let algorithm = Algorithm::full_catalog(n)[draw(12)];
            let adversary = adversary_suite(n, draw(64) as u64)[draw(6)].clone();
            let scenario = trace_cell(algorithm, ssync_bit == 1, adversary, n, draw(64) as u64);
            let (fresh_report, fresh_rounds, fresh_digest) = fresh_trace_run(&scenario);
            let recycled_report = runner.run(&scenario);
            let trace = runner.trace().expect("trace-on cell records on the recycled path");
            let recycled_rounds = assert_view_coherent(trace, &scenario.label());
            prop_assert_eq!(&recycled_report, &fresh_report, "report: {}", scenario.label());
            prop_assert_eq!(&recycled_rounds, &fresh_rounds, "rounds: {}", scenario.label());
            prop_assert_eq!(
                execution_digest(&recycled_report, trace),
                fresh_digest,
                "digest: {}",
                scenario.label()
            );
        }
    }

    /// Rerunning the same trace-on cell on a warm runner reuses the cleared
    /// columns (the zero-allocation regime) and must replay the identical
    /// record stream every time.
    #[test]
    fn recycled_reruns_reproduce_the_trace(
        n in 5usize..11,
        algorithm_index in 0usize..12,
        adversary_index in 0usize..6,
        reruns in 2usize..5,
    ) {
        let algorithm = Algorithm::full_catalog(n)[algorithm_index];
        let adversary = adversary_suite(n, 9)[adversary_index].clone();
        let scenario = trace_cell(algorithm, false, adversary, n, 0);
        let (fresh_report, fresh_rounds, fresh_digest) = fresh_trace_run(&scenario);
        let mut runner = ScenarioRunner::new();
        for rerun in 0..reruns {
            let report = runner.run(&scenario);
            let trace = runner.trace().expect("trace-on cell records on the recycled path");
            let rounds = assert_view_coherent(trace, &scenario.label());
            prop_assert_eq!(&report, &fresh_report, "rerun {}: report", rerun);
            prop_assert_eq!(&rounds, &fresh_rounds, "rerun {}: rounds", rerun);
            prop_assert_eq!(execution_digest(&report, trace), fresh_digest, "rerun {}", rerun);
        }
    }
}
