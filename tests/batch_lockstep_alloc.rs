//! Zero-allocation contract of the batched lockstep steady state.
//!
//! Once a lane group is loaded, re-running the identical group must recycle
//! the whole batch in place — `SimBatch::recycle` plus `run_into` may not
//! touch the global allocator at all. This is the machine-checked half of
//! the "whole batch recycles in place" design rule; the byte-identity half
//! lives in `batch_lockstep_equivalence.rs`.
//!
//! This file deliberately holds a **single** test: the counting global
//! allocator is process-wide, so any concurrently running test would bleed
//! its allocations into the measured window. One test per binary keeps the
//! reading deterministic (the `sweep_throughput` bench asserts the same
//! contract from its single-threaded `main`).

use dynring_analysis::scenario::{AdversaryKind, Scenario, ScenarioBatchRunner};
use dynring_core::Algorithm;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every acquisition (alloc, realloc,
/// alloc_zeroed). Frees are not counted: releasing memory is fine, acquiring
/// new memory is what the steady-state contract forbids.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn batched_steady_state_allocates_nothing() {
    const GENERATIONS: u64 = 32;
    let n = 16;
    // Lanes differ in adversary and placement — a realistic mixed group, not
    // just B copies of one cell — and terminate at different rounds, so the
    // harvest/compaction path is inside the measured window too. Every third
    // lane records a trace: the columnar trace clears capacity-intact on
    // recycle, so trace-on lanes are held to the same zero-allocation
    // steady state as trace-off ones.
    let group: Vec<Scenario> = (0..8u64)
        .map(|lane| {
            let scenario = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
                .with_starts(vec![lane as usize % n, (3 * lane as usize + 1) % n])
                .with_adversary(if lane % 2 == 0 {
                    AdversaryKind::Static
                } else {
                    AdversaryKind::Random { p: 0.7, seed: lane }
                });
            if lane % 3 == 0 {
                scenario.with_trace()
            } else {
                scenario
            }
        })
        .collect();

    let mut runner = ScenarioBatchRunner::new();
    // Two warm-up generations: the first loads the lanes and sizes every
    // buffer, the second proves the recycle path reuses them.
    let _ = runner.run_group_reports(&group);
    let _ = runner.run_group_reports(&group);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..GENERATIONS {
        let reports = runner.run_group_reports(&group);
        assert_eq!(reports.len(), group.len());
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "batched steady state allocated {delta} times over {GENERATIONS} generations"
    );
    // Sanity: the zero-allocation window really recorded traces where asked.
    assert!(runner.trace(0).is_some_and(|trace| !trace.is_empty()), "lane 0 lost its trace");
    assert!(runner.trace(1).is_none(), "lane 1 recorded without asking");
}
