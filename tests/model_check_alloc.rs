//! Zero-allocation contract of the exhaustive search's steady state.
//!
//! A [`SearchContext`] recycles every buffer the sequential search touches —
//! the hashed dedup table, the packed link arena, both frontiers, the
//! checkpoint pool and the canonicalisation scratch. Once a context is warm
//! for a cell, re-running the cell may allocate only the fixed per-run setup
//! (one simulation build) and the terminal witness materialisation; the
//! per-expanded-state inner loop must not touch the global allocator at all.
//!
//! This file deliberately holds a **single** test: the counting global
//! allocator is process-wide, so any concurrently running test would bleed
//! its allocations into the measured window (`batch_lockstep_alloc.rs` pins
//! the engine-side contract the same way).

use dynring_analysis::model_check::{self, SearchContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every acquisition (alloc, realloc,
/// alloc_zeroed). Frees are not counted: releasing memory is fine, acquiring
/// new memory is what the steady-state contract forbids.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warmed_search_allocates_nothing_per_expanded_state() {
    // The Theorem 10 cell at n = 7: tens of thousands of expansions, so any
    // per-state allocation would dominate the measured delta by orders of
    // magnitude over the fixed per-run setup.
    let cells = model_check::table3_cells(7);
    let cell = cells
        .iter()
        .find(|cell| cell.id.starts_with("MC-T3-R2"))
        .expect("the Theorem 10 cell is packaged at n = 7");
    let check = &cell.check;

    let mut ctx = SearchContext::new(1);
    // Two warm-up runs: the first sizes every context buffer, the second
    // proves the recycled shapes are stable.
    let _ = check.run_in(&mut ctx);
    let _ = check.run_in(&mut ctx);

    // The fixed per-run setup the contract allows: one simulation build
    // (run_in constructs its branchable simulation afresh each run).
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    drop(check.branchable_simulation());
    let setup_cost = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let verdict = check.run_in(&mut ctx);
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let expanded = verdict.stats().expanded;
    assert!(
        expanded > 10_000,
        "the cell must be big enough to expose per-state allocations \
         (expanded only {expanded})"
    );
    // Whatever exceeds the simulation build is the terminal witness
    // materialisation: O(depth) small vectors, never O(expanded). A single
    // allocation per expanded state would put `delta` above 10,000.
    let terminal = delta.saturating_sub(setup_cost);
    assert!(
        terminal <= 64,
        "warmed search allocated {delta} times ({terminal} beyond the \
         simulation build) over {expanded} expansions — the per-state loop \
         must be allocation-free"
    );
}
