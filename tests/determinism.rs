//! Golden-execution and batch-equivalence tests.
//!
//! The engine's round loop was refactored onto reusable scratch buffers
//! (allocation-free hot path) and the analysis sweeps onto a parallel batch
//! runner. Neither change may alter a single observable bit of any
//! execution:
//!
//! * the golden tests pin a digest of the full `(RunReport, Trace)` of one
//!   representative scenario per algorithm family, captured from the
//!   pre-refactor engine — any behavioural drift in the round loop changes
//!   the digest;
//! * the batch-equivalence tests check that the parallel sweep executor
//!   produces results identical to the sequential path (see
//!   `tests/batch_equivalence.rs` for the property-based version).

mod common;

use common::{fnv, golden_scenarios};
use dynring_analysis::scenario::Scenario;

/// Digest of a fresh-build execution (see `common::fnv`: two runs digest
/// equal iff they are observably identical).
fn execution_digest(scenario: &Scenario) -> u64 {
    let mut sim = scenario.build();
    let report = sim.run(scenario.max_rounds, scenario.stop);
    let trace = sim.trace().expect("golden scenarios record traces");
    fnv(&format!("{report:?}|{trace:?}"))
}

#[test]
fn golden_executions_digest_to_their_pre_refactor_values() {
    for (name, scenario, expected) in golden_scenarios() {
        let digest = execution_digest(&scenario);
        assert_eq!(
            digest, expected,
            "{name}: execution drifted from the pre-refactor engine \
             (got {digest:#018x}, pinned {expected:#018x})"
        );
    }
}

#[test]
fn golden_executions_are_deterministic_run_to_run() {
    for (name, scenario, _) in golden_scenarios() {
        let first = execution_digest(&scenario);
        let second = execution_digest(&scenario);
        assert_eq!(first, second, "{name}: two identical runs diverged");
    }
}
