//! Exhaustively model-checks the Table 1/3 impossibility rows for small
//! rings: every adversary edge-removal choice at every round is explored, and
//! each discovered witness schedule is replayed through a scripted adversary.
//!
//! ```text
//! cargo run --release --example model_check -- --max-n 6
//! ```

use dynring_analysis::model_check::{self, cross_validate_figure2};
use dynring_analysis::report::markdown_table;

/// Runs the exhaustive battery for ring sizes `4..=max_n` plus the Figure 2
/// cross-validation, prints the rows and returns whether every row holds.
///
/// The ceiling is `n = 10` — the largest size whose full matrix the packed
/// canonical keys and hashed frontier complete in minutes (the widest cell
/// alone expands tens of millions of states there).
pub fn run(max_n: usize) -> bool {
    let max_n = max_n.clamp(4, 10);
    let sizes: Vec<usize> = (4..=max_n).collect();
    let rows = model_check::model_check_rows(&sizes);
    println!(
        "{}",
        markdown_table("Exhaustive model checking — Tables 1/3 impossibility rows", &rows)
    );
    let mut ok = rows.iter().all(|r| r.holds);

    println!("\n## Figure 2 cross-validation (discovered worst case vs hand script)\n");
    for n in sizes.iter().copied().filter(|&n| n >= 5) {
        let (discovered, scripted) = cross_validate_figure2(n);
        let holds = discovered >= scripted;
        ok &= holds;
        println!(
            "- n={n}: exhaustive worst exploration round {discovered}, Figure 2 script {scripted} {}",
            if holds { "(script confirmed as a valid pin)" } else { "(SCRIPT TOO STRONG)" }
        );
    }
    ok
}

fn main() {
    let mut max_n = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-n" => {
                max_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-n needs an integer argument");
            }
            other => panic!("unknown argument {other} (supported: --max-n N)"),
        }
    }
    if !run(max_n) {
        std::process::exit(1);
    }
}
