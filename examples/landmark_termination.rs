//! Landmark-based termination with and without chirality.
//!
//! Demonstrates Algorithms `LandmarkWithChirality` (Figure 4) and
//! `LandmarkNoChirality` (Figure 13): two agents with no idea of the ring
//! size explore and explicitly terminate thanks to the landmark node, in
//! `O(n)` rounds with chirality and `O(n log n)` without.
//!
//! ```bash
//! cargo run --example landmark_termination -- 24
//! ```

use dynring_analysis::scenario::{AdversaryKind, Scenario};
use dynring_core::fsync::LandmarkNoChirality;
use dynring_core::Algorithm;
use dynring_engine::RunReport;
use dynring_graph::Handedness;

/// The example's core path, callable from the smoke tests: runs both landmark
/// algorithms against three adversaries on a ring of `n` nodes and returns
/// the labelled reports.
pub fn run(n: usize) -> Vec<(&'static str, &'static str, RunReport)> {
    println!("== Landmark-based termination on a ring of {n} nodes ==\n");

    let mut results = Vec::new();
    for (label, algorithm, orientations) in [
        (
            "with chirality (Fig. 4, O(n))",
            Algorithm::LandmarkChirality,
            vec![Handedness::LeftIsCcw, Handedness::LeftIsCcw],
        ),
        (
            "without chirality (Fig. 13, O(n log n))",
            Algorithm::LandmarkNoChirality,
            vec![Handedness::LeftIsCcw, Handedness::LeftIsCw],
        ),
    ] {
        for (adv_label, adversary) in [
            ("static ring", AdversaryKind::Static),
            ("one edge missing forever", AdversaryKind::BlockForever { edge: n / 2 }),
            ("agents kept apart", AdversaryKind::PreventMeeting),
        ] {
            let report = Scenario::fsync(n, algorithm)
                .with_orientations(orientations.clone())
                .with_adversary(adversary)
                .with_max_rounds(4 * LandmarkNoChirality::termination_bound(n as u64) + 1000)
                .run();
            println!(
                "{label:<42} vs {adv_label:<26} explored@{:<6?} terminated@{:?}",
                report.explored_at, report.termination_rounds
            );
            results.push((label, adv_label, report));
        }
    }
    println!(
        "\npaper bounds: O(n) with chirality; without chirality the explicit bound is 32(3⌈log n⌉+3)·5n = {}",
        LandmarkNoChirality::termination_bound(n as u64)
    );
    results
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(24);
    run(n);
}
