//! A resumable sweep: the crash-safe job runtime running a real battery.
//!
//! Wraps a feasibility-style battery (every catalog algorithm at several
//! ring sizes) as a [`Job`] and executes it under the [`Supervisor`],
//! journaling every cell to an append-only JSONL file. Kill the process at
//! any point — `kill -9` included — and re-run the same command: it
//! resumes from the journal, re-using every journaled cell, and the final
//! report is **byte-identical** to the uninterrupted one. That round-trip
//! is exactly what the CI crash-resume smoke does to this example.
//!
//! ```bash
//! cargo run --release --example sweep_service -- --journal /tmp/sweep.jsonl --report /tmp/report.md
//! # interrupt it however you like, then run the identical command again
//! ```
//!
//! `--throttle-ms N` slows every cell down (to widen the kill window for
//! the CI smoke); `--cells N` sizes the battery.

use dynring_core::Algorithm;
use dynring_service::{Job, JobOutcome, JobStatus, ServiceError, Supervisor};
use std::path::{Path, PathBuf};
use std::time::Duration;

use dynring_analysis::Scenario;

/// The example battery: every FSYNC catalog algorithm crossed with a range
/// of ring sizes, in a deterministic order (the same `cells` count always
/// produces the same job, which is what makes resume possible).
pub fn battery(cells: usize) -> Job {
    let algorithms = [
        |n: usize| Algorithm::KnownBound { upper_bound: n },
        |_n: usize| Algorithm::LandmarkChirality,
        |_n: usize| Algorithm::LandmarkNoChirality,
    ];
    let scenarios: Vec<Scenario> = (0..cells)
        .map(|i| {
            let n = 8 + (i / algorithms.len()) * 2;
            Scenario::fsync(n, algorithms[i % algorithms.len()](n))
        })
        .collect();
    Job::new("sweep-service-example", scenarios)
}

/// The example's core path: run (or resume) `job` against `journal`,
/// writing the rendered report to `report` when given, and returning the
/// outcome. Resume bookkeeping goes to stderr so the report file stays a
/// pure function of the cells' terminal states.
pub fn run(
    supervisor: &Supervisor,
    job: &Job,
    journal: &Path,
    report: Option<&Path>,
) -> Result<JobOutcome, ServiceError> {
    let outcome = supervisor.run(job, journal)?;
    eprintln!(
        "job {}: {} ({} of {} cells resumed from {})",
        outcome.job_id,
        outcome.status.label(),
        outcome.resumed,
        job.len(),
        journal.display(),
    );
    let rendered = outcome.render(job);
    match report {
        Some(path) => std::fs::write(path, &rendered).map_err(|source| ServiceError::Io {
            context: format!("writing report {}", path.display()),
            source,
        })?,
        None => print!("{rendered}"),
    }
    Ok(outcome)
}

fn main() {
    let mut journal = PathBuf::from("sweep_service.journal.jsonl");
    let mut report: Option<PathBuf> = None;
    let mut throttle_ms: u64 = 0;
    let mut cells: usize = 24;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--journal" => journal = PathBuf::from(value("--journal")),
            "--report" => report = Some(PathBuf::from(value("--report"))),
            "--throttle-ms" => {
                throttle_ms = value("--throttle-ms")
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid --throttle-ms: {e}"));
            }
            "--cells" => {
                cells = value("--cells")
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid --cells: {e}"));
            }
            other => panic!(
                "unknown argument {other:?} (expected --journal, --report, --throttle-ms, --cells)"
            ),
        }
    }

    let job = battery(cells);
    let supervisor =
        Supervisor::new().chunk(4).throttle(Duration::from_millis(throttle_ms));
    match run(&supervisor, &job, &journal, report.as_deref()) {
        Ok(outcome) => {
            if outcome.status == JobStatus::Complete {
                std::process::exit(0);
            }
            // Quarantined or skipped cells: the report says which; signal
            // the degradation through the exit code.
            std::process::exit(2);
        }
        Err(error) => {
            eprintln!("sweep service failed: {error}");
            std::process::exit(1);
        }
    }
}
