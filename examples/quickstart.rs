//! Quickstart: two agents explore a dynamic ring and terminate.
//!
//! Runs Algorithm `KnownNNoChirality` (Figure 1 of the paper) on a ring of 12
//! nodes while an adversary removes a random edge most rounds, prints a short
//! per-round rendering and the final report.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use dynring::prelude::*;
use dynring_engine::render;

/// The example's core path, callable from the smoke tests: explores a ring of
/// `n` nodes and returns the final report after asserting the Theorem 3
/// guarantees.
pub fn run(n: usize) -> Result<RunReport, Box<dyn std::error::Error>> {
    let ring = RingTopology::new(n)?;

    let mut sim = Simulation::builder(ring.clone())
        .synchrony(SynchronyModel::Fsync)
        .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(KnownBound::new(n)))
        .agent(NodeId::new(5 % n), Handedness::LeftIsCw, Box::new(KnownBound::new(n)))
        .activation(Box::new(FullActivation))
        .edges(Box::new(StickyRandomEdge::new(1, n as u64, 0.3, 42)))
        .record_trace(true)
        .build()?;

    let report = sim.run(10 * n as u64, StopCondition::AllTerminated);

    println!("== Live exploration of a dynamic ring (n = {n}) ==\n");
    println!("{}", render::render_trace(&ring, sim.trace().expect("trace enabled"), 40));
    println!("explored at round ............ {:?}", report.explored_at);
    println!("terminations ................. {:?}", report.termination_rounds);
    println!("moves per agent .............. {:?}", report.moves_per_agent);
    println!("paper bound (3N−6) ........... {}", 3 * n - 6);

    assert!(report.explored(), "Theorem 3 guarantees exploration");
    assert!(report.all_terminated, "Theorem 3 guarantees explicit termination");
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(12)?;
    Ok(())
}
