//! The three semi-synchronous transport models side by side.
//!
//! The same team of agents (three, no chirality, knowing an upper bound) is
//! run under NS, PT and ET. Under NS the Theorem 9 adversary freezes them
//! forever; under PT and ET they explore and one agent terminates.
//!
//! ```bash
//! cargo run --example ssync_transport_models
//! ```

use dynring::prelude::*;

/// The example's core path, callable from the smoke tests: runs one team of
/// three agents under the given transport model and returns the report.
pub fn run(model: TransportModel, n: usize) -> RunReport {
    let ring = RingTopology::new(n).expect("valid ring");
    let mut builder = Simulation::builder(ring)
        .synchrony(SynchronyModel::Ssync(model))
        .record_trace(false);
    for start in [0, n / 3, 2 * n / 3] {
        builder = builder.agent(
            NodeId::new(start),
            Handedness::LeftIsCcw,
            Box::new(match model {
                TransportModel::EventualTransport => PtNoChirality::for_eventual_transport(n),
                _ => PtNoChirality::with_upper_bound(n),
            }),
        );
    }
    let mut sim = match model {
        // Theorem 9: under NS the adversary pairs the first-mover scheduler
        // with the matching edge removal and nothing ever moves.
        TransportModel::NoSimultaneity => builder
            .activation(Box::new(FirstMoverOnly))
            .edges(Box::new(BlockFirstMover))
            .build()
            .expect("valid scenario"),
        TransportModel::PassiveTransport => builder
            .activation(Box::new(AlternateBlocked::new(3)))
            .edges(Box::new(StickyRandomEdge::new(1, n as u64, 0.3, 7)))
            .build()
            .expect("valid scenario"),
        TransportModel::EventualTransport => builder
            .activation(Box::new(EtFairness::new(Box::new(RoundRobinSingle::new()), 1)))
            .edges(Box::new(StickyRandomEdge::new(1, n as u64, 0.3, 7)))
            .build()
            .expect("valid scenario"),
    };
    sim.run(500 * (n as u64) * (n as u64), StopCondition::ExploredAndPartialTermination)
}

fn main() {
    let n = 12;
    println!("== Semi-synchronous transport models on a ring of {n} nodes ==\n");
    for model in [
        TransportModel::NoSimultaneity,
        TransportModel::PassiveTransport,
        TransportModel::EventualTransport,
    ] {
        let report = run(model, n);
        println!(
            "{model}: explored={:<5} visited={}/{n} moves={:<6} terminated agents={}",
            report.explored(),
            report.visited_count,
            report.total_moves,
            report.termination_rounds.iter().flatten().count(),
        );
    }
    println!("\nNS never explores (Theorem 9); PT and ET explore with partial termination (Theorems 16 and 20).");
}
