//! Figure 2: the adversarial schedule that forces `KnownNNoChirality` to use
//! exactly `3n − 6` rounds.
//!
//! ```bash
//! cargo run --example worst_case_schedule -- 16
//! ```

use dynring_analysis::figures::{self, Figure2Outcome};

/// The example's core path, callable from the smoke tests: replays the
/// Figure 2 schedule on a ring of `n` nodes, prints the comparison with a
/// benign schedule, and returns the outcome.
pub fn run(n: usize) -> Figure2Outcome {
    println!("== Figure 2 worst-case schedule ==\n");
    println!("ring size n = {n}; the paper's worst case is 3n − 6 = {}", 3 * n - 6);

    let outcome = figures::figure2(n);
    println!("exploration completed at round {:?}", outcome.explored_at);
    println!("terminations at {:?}", outcome.report.termination_rounds);
    println!(
        "worst case reproduced exactly: {}",
        if outcome.matches() { "yes" } else { "NO" }
    );

    // Also show that a benign schedule is much faster, so the adversary
    // really is the cause of the 3n − 6 cost.
    let benign = dynring_analysis::scenario::Scenario::fsync(
        n,
        dynring_core::Algorithm::KnownBound { upper_bound: n },
    )
    .with_starts(vec![0, 1])
    .run();
    println!(
        "\nfor comparison, with no missing edges the same agents explore by round {:?}",
        benign.explored_at
    );
    outcome
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    run(n);
}
