//! Regenerates the paper's feasibility map (Tables 1–4) and the figure
//! experiments, printing them as markdown tables.
//!
//! This is the programme behind `EXPERIMENTS.md`. Ring sizes are kept small
//! so the whole map runs in a couple of minutes; pass `--large` for the
//! larger sweep used in the benchmark harness, or `--huge` for the
//! *Revisited*-scale battery (larger rings, more seeds, dense start
//! placements — affordable thanks to the recycled run lifecycle; set
//! `DYNRING_HUGE_SMOKE=1` to exercise the huge configuration on tiny rings,
//! as CI does).
//!
//! ```bash
//! cargo run --release --example feasibility_map
//! cargo run --release --example feasibility_map -- --huge
//! ```

use dynring_analysis::{
    figures, lower_bounds, markdown_table, tables, BatchRunner, PlacementDensity,
};

/// Ring sizes and seed counts for one regeneration of the map.
pub struct MapConfig {
    /// Ring sizes for the FSYNC possibility rows (Table 2).
    pub fsync_sizes: Vec<usize>,
    /// Ring sizes for the SSYNC possibility and lower-bound rows (Table 4).
    pub ssync_sizes: Vec<usize>,
    /// Number of random seeds per scenario.
    pub seeds: u64,
    /// Ring size for the FSYNC impossibility rows (Table 1, minimum 12).
    pub impossibility_n: usize,
    /// Ring size for the SSYNC impossibility rows (Table 3, kept smaller
    /// because its witnesses run quadratic-move algorithms to exhaustion).
    pub ssync_impossibility_n: usize,
    /// Ring size for the figure experiments.
    pub figures_n: usize,
    /// Ring size for the Theorem 4 lower-bound row.
    pub lower_bound_n: usize,
    /// Start-placement density of the possibility batteries (the `--huge`
    /// map sweeps the dense grid of the Revisited follow-up).
    pub density: PlacementDensity,
}

impl MapConfig {
    /// The small default map (a few seconds).
    pub fn small() -> Self {
        MapConfig {
            fsync_sizes: vec![6, 9, 12],
            ssync_sizes: vec![6, 8],
            seeds: 1,
            impossibility_n: 16,
            ssync_impossibility_n: 10,
            figures_n: 12,
            lower_bound_n: 12,
            density: PlacementDensity::Standard,
        }
    }

    /// The larger sweep used by the benchmark harness.
    pub fn large() -> Self {
        MapConfig {
            fsync_sizes: vec![8, 16, 32, 64],
            ssync_sizes: vec![6, 9, 12, 16],
            seeds: 3,
            impossibility_n: 16,
            ssync_impossibility_n: 10,
            figures_n: 12,
            lower_bound_n: 12,
            density: PlacementDensity::Standard,
        }
    }

    /// The `--huge` battery of the ROADMAP (per the *Revisited* follow-up,
    /// arXiv:2001.04525): larger rings, more seeds and the dense
    /// start-placement grid. Honour `DYNRING_HUGE_SMOKE=1` (the CI knob)
    /// by shrinking the rings back to smoke scale while keeping the dense
    /// grid and extra seeds, so the configuration itself stays exercised.
    pub fn huge() -> Self {
        if std::env::var("DYNRING_HUGE_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty()) {
            return MapConfig {
                seeds: 2,
                density: PlacementDensity::Dense,
                ..MapConfig::small()
            };
        }
        MapConfig {
            fsync_sizes: vec![8, 16, 32, 64, 128],
            ssync_sizes: vec![6, 9, 12, 16],
            seeds: 4,
            impossibility_n: 24,
            ssync_impossibility_n: 12,
            figures_n: 16,
            lower_bound_n: 16,
            density: PlacementDensity::Dense,
        }
    }
}

/// The example's core path, callable from the smoke tests: regenerates every
/// table, figure and lower-bound row and returns whether all of them are
/// consistent with the paper.
pub fn run(config: &MapConfig) -> bool {
    // Every battery fans its independent runs across this runner's threads
    // (`DYNRING_THREADS` overrides the default). Results are merged in input
    // order, so stdout is byte-identical whatever the thread count; the
    // runner configuration itself goes to stderr.
    let runner = BatchRunner::from_env();
    eprintln!("batch runner: {} thread(s); set DYNRING_THREADS to override", runner.threads());

    println!("# Feasibility map of Live Exploration of Dynamic Rings\n");

    let t1 = tables::table1_with(&runner, config.impossibility_n);
    println!("{}", markdown_table("Table 1 — FSYNC impossibility results", &t1));

    let t2 = tables::table2_battery(&runner, &config.fsync_sizes, config.seeds, config.density);
    println!("{}", markdown_table("Table 2 — FSYNC possibility results", &t2));

    let t3 = tables::table3_with(&runner, config.ssync_impossibility_n);
    println!("{}", markdown_table("Table 3 — SSYNC impossibility results", &t3));

    let t4 = tables::table4_battery(&runner, &config.ssync_sizes, config.seeds, config.density);
    println!("{}", markdown_table("Table 4 — SSYNC possibility results", &t4));

    let figs = figures::all_figures(config.figures_n);
    println!("{}", markdown_table("Figures 2, 5–7, 12, 15, 16", &figs));

    let mut lb = vec![lower_bounds::theorem4(config.lower_bound_n)];
    lb.extend(lower_bounds::theorem13_15_battery(
        &runner,
        &config.ssync_sizes,
        config.seeds,
        config.density,
    ));
    println!("{}", markdown_table("Lower bounds (Theorems 4, 13, 15)", &lb));

    let all_hold = t1
        .iter()
        .chain(&t2)
        .chain(&t3)
        .chain(&t4)
        .chain(&figs)
        .chain(&lb)
        .all(|row| row.holds);
    println!("\nAll rows consistent with the paper: {}", if all_hold { "yes" } else { "NO" });
    all_hold
}

fn main() {
    let config = if std::env::args().any(|a| a == "--huge") {
        MapConfig::huge()
    } else if std::env::args().any(|a| a == "--large") {
        MapConfig::large()
    } else {
        MapConfig::small()
    };
    assert!(run(&config), "feasibility map inconsistent with the paper");
}
