//! Regenerates the paper's feasibility map (Tables 1–4) and the figure
//! experiments, printing them as markdown tables.
//!
//! This is the programme behind `EXPERIMENTS.md`. Ring sizes are kept small
//! so the whole map runs in a couple of minutes; pass `--large` for the
//! larger sweep used in the benchmark harness.
//!
//! ```bash
//! cargo run --release --example feasibility_map
//! ```

use dynring_analysis::{figures, lower_bounds, markdown_table, tables};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let (fsync_sizes, ssync_sizes, seeds): (Vec<usize>, Vec<usize>, u64) = if large {
        (vec![8, 16, 32, 64], vec![6, 9, 12, 16], 3)
    } else {
        (vec![6, 9, 12], vec![6, 8], 1)
    };

    println!("# Feasibility map of Live Exploration of Dynamic Rings\n");

    let t1 = tables::table1(16);
    println!("{}", markdown_table("Table 1 — FSYNC impossibility results", &t1));

    let t2 = tables::table2(&fsync_sizes, seeds);
    println!("{}", markdown_table("Table 2 — FSYNC possibility results", &t2));

    let t3 = tables::table3(10);
    println!("{}", markdown_table("Table 3 — SSYNC impossibility results", &t3));

    let t4 = tables::table4(&ssync_sizes, seeds);
    println!("{}", markdown_table("Table 4 — SSYNC possibility results", &t4));

    let figs = figures::all_figures(12);
    println!("{}", markdown_table("Figures 2, 5–7, 12, 15, 16", &figs));

    let mut lb = vec![lower_bounds::theorem4(12)];
    lb.extend(lower_bounds::theorem13_15(&ssync_sizes, seeds));
    println!("{}", markdown_table("Lower bounds (Theorems 4, 13, 15)", &lb));

    let all_hold = t1
        .iter()
        .chain(&t2)
        .chain(&t3)
        .chain(&t4)
        .chain(&figs)
        .chain(&lb)
        .all(|row| row.holds);
    println!("\nAll rows consistent with the paper: {}", if all_hold { "yes" } else { "NO" });
}
