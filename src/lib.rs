//! # dynring — Live Exploration of Dynamic Rings
//!
//! A from-scratch Rust reproduction of *Live Exploration of Dynamic Rings*
//! (G. Di Luna, S. Dobrev, P. Flocchini, N. Santoro — ICDCS 2016,
//! arXiv:1512.05306): a simulator for 1-interval-connected dynamic rings,
//! the Look–Compute–Move mobile-agent model under full and semi-synchrony
//! (with the NS / PT / ET transport models), every exploration algorithm of
//! the paper, the adversaries of the impossibility and lower-bound proofs,
//! and an experiment harness that regenerates the paper's feasibility map
//! (Tables 1–4) and figures.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `dynring-graph` | ring topology, ports, edge schedules, time-varying-graph layer |
//! | [`model`] | `dynring-model` | snapshots, decisions, knowledge, the `Protocol` trait |
//! | [`algorithms`] | `dynring-core` | the paper's algorithms (FSYNC and SSYNC) |
//! | [`engine`] | `dynring-engine` | round engine, schedulers, adversaries, traces |
//! | [`analysis`] | `dynring-analysis` | the table/figure experiments |
//! | [`service`] | `dynring-service` | crash-safe job runtime: journaled, resumable sweeps |
//!
//! # Quickstart
//!
//! ```
//! use dynring::prelude::*;
//!
//! // Two agents that know an upper bound on the ring size explore a dynamic
//! // ring of 10 nodes and terminate within 3N − 6 rounds, whatever the
//! // adversary does (here: a random edge is missing most rounds).
//! let ring = RingTopology::new(10)?;
//! let mut sim = Simulation::builder(ring)
//!     .synchrony(SynchronyModel::Fsync)
//!     .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(KnownBound::new(10)))
//!     .agent(NodeId::new(5), Handedness::LeftIsCcw, Box::new(KnownBound::new(10)))
//!     .activation(Box::new(FullActivation))
//!     .edges(Box::new(RandomEdge::new(0.8, 42)))
//!     .build()?;
//! let report = sim.run(100, StopCondition::AllTerminated);
//! assert!(report.explored());
//! assert!(report.all_terminated);
//! assert!(report.last_termination().unwrap() <= 3 * 10 - 6 + 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dynring_analysis as analysis;
pub use dynring_core as algorithms;
pub use dynring_engine as engine;
pub use dynring_graph as graph;
pub use dynring_model as model;
pub use dynring_service as service;

pub mod prelude {
    //! The most commonly used items, re-exported for quick scripting.
    pub use dynring_analysis::scenario::{AdversaryKind, DispatchKind, Scenario, SchedulerKind};
    pub use dynring_core::fsync::{KnownBound, LandmarkChirality, LandmarkNoChirality, Unconscious};
    pub use dynring_core::ssync::{
        EtUnconscious, PtBoundChirality, PtLandmarkChirality, PtNoChirality,
    };
    pub use dynring_core::{Algorithm, CatalogProtocol, Counters};
    pub use dynring_engine::adversary::{
        AlternatingBlock, BlockAgent, BlockEdgeForever, BlockFirstMover, ConfineWindow,
        FromSchedule, NoRemoval, PreventMeeting, RandomEdge, StickyRandomEdge,
    };
    pub use dynring_engine::scheduler::{
        AlternateBlocked, EtFairness, FirstMoverOnly, FullActivation, RandomSubset,
        RoundRobinSingle,
    };
    pub use dynring_engine::sim::{RunReport, Simulation, StopCondition};
    pub use dynring_engine::world::AgentProgram;
    pub use dynring_graph::{
        EdgeId, EdgeSchedule, GlobalDirection, Handedness, NodeId, RingTopology, ScheduleBuilder,
    };
    pub use dynring_model::{
        Decision, Knowledge, LocalDirection, Protocol, Snapshot, SynchronyModel, TerminationKind,
        TransportModel,
    };
    pub use dynring_service::{FaultPlan, Job, JobOutcome, JobStatus, Supervisor};
}
