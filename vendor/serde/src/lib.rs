//! Offline stub of `serde`.
//!
//! The build container has no access to crates.io, so this crate provides the
//! minimal surface the workspace uses: the [`Serialize`] and [`Deserialize`]
//! marker traits (blanket-implemented for every type) and re-exports of the
//! no-op derive macros from the stub `serde_derive`. Replacing this stub with
//! the real `serde` is a one-line change in the root `Cargo.toml`'s
//! `[workspace.dependencies]` table and requires no source edits.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; satisfied by every type.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stub of the `serde::de` module (trait names only).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stub of the `serde::ser` module (trait names only).
pub mod ser {
    pub use crate::Serialize;
}
