//! Offline stub of `serde_derive`.
//!
//! The derives are accepted and expand to nothing; the corresponding traits
//! in the stub `serde` crate are blanket-implemented for every type, so
//! `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds both work
//! without pulling the real dependency into the no-network build container.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
