//! Offline stub of `criterion` 0.5.
//!
//! The build container cannot reach crates.io, so this crate re-implements
//! the subset of Criterion the benchmark harness uses: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros. Timing
//! is a straightforward wall-clock loop (warm-up, then sample for the
//! configured measurement time) reporting mean ns/iter — no statistics,
//! no plots, but honest numbers, and identical bench-target source code.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter, rendered as
    /// `name/parameter` like the real Criterion.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing driver handed to the benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly: first for the warm-up window, then for the
    /// measurement window, recording the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
        self.iters = iters;
    }
}

/// A named collection of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    // Criterion's sample count has no direct analogue in this stub's
    // fixed-time loop; it is accepted (and ignored) for source compatibility.
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for compatibility; unused).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets how long each benchmark is measured.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean_ns: None,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean_ns: None,
            iters: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (prints a trailing newline like Criterion's summary).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.mean_ns {
            Some(mean) => println!(
                "{}/{}: {:>12.1} ns/iter ({} iterations)",
                self.name, id, mean, bencher.iters
            ),
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility with generated mains; returns `self`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned()).bench_function("default", f);
        self
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
