//! Offline stub of `criterion` 0.5.
//!
//! The build container cannot reach crates.io, so this crate re-implements
//! the subset of Criterion the benchmark harness uses: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros. Timing
//! is a straightforward wall-clock loop (warm-up, then sample for the
//! configured measurement time) reporting the mean and the p50/p90/p99
//! per-iteration percentiles — no plots, but honest numbers, and identical
//! bench-target source code. Every call is timed individually; the mean is
//! the average of the recorded samples, so the loop's own bookkeeping (the
//! sample push, the window check) stays outside the reported numbers.
//! Samples are capped at [`MAX_SAMPLES`]; past the cap the mean falls back
//! to wall-clock-window / iterations and the percentiles describe the first
//! million iterations.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter, rendered as
    /// `name/parameter` like the real Criterion.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Upper bound on recorded per-iteration samples (8 MiB of `u64`s); see the
/// crate docs for the semantics past the cap.
pub const MAX_SAMPLES: usize = 1 << 20;

/// Summary statistics of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean nanoseconds per iteration (average of the per-call samples
    /// while under [`MAX_SAMPLES`]; wall-clock window / iterations past it).
    pub mean_ns: f64,
    /// Median per-iteration nanoseconds.
    pub p50_ns: f64,
    /// 90th-percentile per-iteration nanoseconds.
    pub p90_ns: f64,
    /// 99th-percentile per-iteration nanoseconds.
    pub p99_ns: f64,
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a **sorted** sample slice, by the
/// nearest-rank method. Returns 0 for an empty slice.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Per-iteration timing driver handed to the benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    stats: Option<Stats>,
    iters: u64,
    samples: Vec<u64>,
}

impl Bencher {
    /// Calls `routine` repeatedly: first for the warm-up window, then for the
    /// measurement window, recording the wall-clock time of every call (up
    /// to [`MAX_SAMPLES`]) for the mean and percentile report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        self.samples.clear();
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            let iteration_start = Instant::now();
            black_box(routine());
            let iteration_ns = iteration_start.elapsed().as_nanos() as u64;
            if self.samples.len() < MAX_SAMPLES {
                self.samples.push(iteration_ns);
            }
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        // While every iteration was sampled, the mean comes from the samples
        // themselves, keeping the loop's bookkeeping out of the number; past
        // the cap, fall back to the wall-clock window.
        let mean_ns = if (self.samples.len() as u64) == iters {
            self.samples.iter().sum::<u64>() as f64 / iters as f64
        } else {
            start.elapsed().as_nanos() as f64 / iters as f64
        };
        self.samples.sort_unstable();
        self.stats = Some(Stats {
            mean_ns,
            p50_ns: percentile(&self.samples, 0.50),
            p90_ns: percentile(&self.samples, 0.90),
            p99_ns: percentile(&self.samples, 0.99),
        });
        self.iters = iters;
    }
}

/// A named collection of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    // Criterion's sample count has no direct analogue in this stub's
    // fixed-time loop; it is accepted (and ignored) for source compatibility.
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for compatibility; unused).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets how long each benchmark is measured.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            stats: None,
            iters: 0,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            stats: None,
            iters: 0,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (prints a trailing newline like Criterion's summary).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.stats {
            Some(stats) => println!(
                "{}/{}: {:>12.1} ns/iter (p50={:.1} p90={:.1} p99={:.1}; {} iterations)",
                self.name,
                id,
                stats.mean_ns,
                stats.p50_ns,
                stats.p90_ns,
                stats.p99_ns,
                bencher.iters
            ),
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility with generated mains; returns `self`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned()).bench_function("default", f);
        self
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.90), 90.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[42], 0.5), 42.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn bencher_reports_ordered_percentiles() {
        let mut bencher = Bencher {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(10),
            stats: None,
            iters: 0,
            samples: Vec::new(),
        };
        bencher.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        let stats = bencher.stats.expect("iter records stats");
        assert!(bencher.iters > 0);
        assert!(stats.mean_ns > 0.0);
        assert!(stats.p50_ns <= stats.p90_ns);
        assert!(stats.p90_ns <= stats.p99_ns);
    }
}
