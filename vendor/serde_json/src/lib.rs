//! Offline stub of `serde_json`.
//!
//! No workspace code serializes JSON yet; this crate exists so that the
//! `[workspace.dependencies]` table already carries the name and future code
//! can depend on it without touching the manifest layout. It offers a tiny
//! debug-based `to_string` so traces can be dumped in a pinch; swap in the
//! real `serde_json` (one line in the root `Cargo.toml`) before relying on
//! the output format.

#![forbid(unsafe_code)]

use serde::Serialize;

/// Error type mirroring `serde_json::Error` (the stub never fails).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Renders a value via its `Debug` impl. Placeholder for
/// `serde_json::to_string`; the output is *not* JSON.
pub fn to_string<T: Serialize + std::fmt::Debug>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}
