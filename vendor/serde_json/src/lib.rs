//! Offline stub of `serde_json`.
//!
//! The build container has no access to crates.io, so this crate provides
//! the subset of `serde_json` the workspace actually uses:
//!
//! * a real [`Value`] tree with a strict recursive-descent parser
//!   (`"…".parse::<Value>()`, like the real crate's `FromStr` impl) and a
//!   compact writer (`Value`'s `Display` impl, like the real crate's) — this
//!   is what the service crate's JSONL journal is built on;
//! * the legacy Debug-based [`to_string`] shim kept from the original stub
//!   (not JSON; only for ad-hoc dumps of arbitrary `Debug` types).
//!
//! Swapping in the real `serde_json` remains a one-line change in the root
//! `Cargo.toml`: code that sticks to `Value`'s `FromStr`/`Display`/accessor
//! surface compiles unchanged against the real crate.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The map type backing [`Value::Object`] (the real crate's default map is
/// also ordered by key).
pub type Map<K, V> = BTreeMap<K, V>;

/// Error raised by the parser (and by the legacy [`to_string`] shim, which
/// never fails).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A JSON number. Integers are kept exact (`u64`/`i64`) rather than routed
/// through `f64`, because the journal stores round counts and digests that
/// must survive a round-trip bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as an `f64` (always succeeds, possibly lossily for huge
    /// integers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::PosInt(v) => Some(v as f64),
            N::NegInt(v) => Some(v as f64),
            N::Float(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Match serde_json: floats that happen to be integral
                    // still print a decimal point ("1.0", not "1").
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number { n: N::PosInt(v) }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number { n: N::PosInt(v as u64) }
        } else {
            Number { n: N::NegInt(v) }
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number { n: N::Float(v) }
    }
}

/// A parsed JSON document, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered by key).
    Object(Map<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from(v as u64))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::from(u64::from(v)))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_fmt(format_args!("{c}"))?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON, like the real crate's `Display` for `Value`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => escape_into(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", message.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {literal:?}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the journal;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(
                                self.error(format!("invalid escape {:?}", other as char))
                            )
                        }
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::from(v)))
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

impl FromStr for Value {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parser = Parser::new(s);
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != s.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Renders a value via its `Debug` impl. Legacy placeholder for
/// `serde_json::to_string` on arbitrary types; the output is *not* JSON.
/// Prefer building a [`Value`] and using its `Display` impl, which is.
pub fn to_string<T: Serialize + std::fmt::Debug>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let text = v.to_string();
        let back: Value = text.parse().expect("writer output must parse");
        assert_eq!(&back, v, "roundtrip through {text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::from(0u64));
        roundtrip(&Value::from(u64::MAX));
        roundtrip(&Value::from(-42i64));
        roundtrip(&Value::from(i64::MIN));
        roundtrip(&Value::from(0.25f64));
        roundtrip(&Value::from("plain"));
        roundtrip(&Value::from("quotes \" and \\ and \n control \u{1} chars"));
    }

    #[test]
    fn collections_roundtrip() {
        let mut map = Map::new();
        map.insert("b".into(), Value::from(2u64));
        map.insert("a".into(), Value::Array(vec![Value::Null, Value::from("x")]));
        map.insert("nested".into(), Value::Object(Map::new()));
        roundtrip(&Value::Object(map));
        roundtrip(&Value::Array(vec![]));
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = Value::from(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
        let back: Value = v.to_string().parse().unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v: Value = " { \"k\" : [ 1 , true , null , \"a\\u0041\" ] } ".parse().unwrap();
        let items = v.get("k").and_then(Value::as_array).unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_bool(), Some(true));
        assert!(items[2].is_null());
        assert_eq!(items[3].as_str(), Some("aA"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "nul"] {
            assert!(bad.parse::<Value>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors_are_typed() {
        let v: Value = "{\"n\":3,\"s\":\"x\",\"f\":1.5,\"neg\":-7}".parse().unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
    }

    #[test]
    fn floats_print_a_decimal_point() {
        assert_eq!(Value::from(2.0f64).to_string(), "2.0");
        assert_eq!(Value::from(2.5f64).to_string(), "2.5");
    }

    #[test]
    fn legacy_debug_shim_still_works() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
    }
}
