//! Offline stub of `proptest`.
//!
//! Supports the subset the integration tests use: the [`proptest!`] macro
//! with a `#![proptest_config(...)]` header, integer-range and
//! [`any::<T>()`](any) strategies, [`prop_assert!`] / [`prop_assert_eq!`],
//! and [`test_runner::TestCaseError`]. Cases are generated from a
//! deterministic per-test seed (derived from the test name), so failures are
//! reproducible run-to-run; there is no shrinking — the failure report
//! instead prints the sampled arguments of the offending case.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configures the number of cases to generate.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner types (stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with a message.
        pub fn fail<M: std::fmt::Display>(message: M) -> Self {
            TestCaseError(message.to_string())
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Outcome of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Deterministic SplitMix64 generator used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A source of generated values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for an arbitrary value of `T` (stand-in for `proptest::arbitrary`).
pub struct Any<T>(PhantomData<T>);

/// Produces the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types that can be generated unconstrained.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Declares property tests: each generated case samples every `arg in
/// strategy` binding, runs the body, and panics with the sampled arguments on
/// the first failing case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    if let Err(error) = outcome {
                        panic!(
                            "proptest case {}/{} failed for {}: {}",
                            case + 1, config.cases, described, error
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// The commonly used items (stand-in for `proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy};
}
