//! Offline stub of `rand` 0.8.
//!
//! Implements the exact API surface the engine uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and [`Rng::gen_range`]
//! over integer ranges — on top of xoshiro256**, seeded through SplitMix64
//! (the same seeding scheme the real `rand` uses for small seeds). Fully
//! deterministic for a given seed, which is all the simulators need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core uniform-bit-source trait (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] accepts (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, as in the real rand's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..=5_500).contains(&heads), "badly biased: {heads}/10000");
    }
}
